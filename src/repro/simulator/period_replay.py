"""Periodic steady-state replay for the windowed batch schedulers.

The GEMM traces the batch pipeline schedules are dominated by software
loops: long regions where instruction ``i + P`` is a structural copy of
instruction ``i`` — same decoded record, and every dependence edge
either carried (producer shifted by exactly ``P``) or loop-invariant
(same producer). Inside such a region the scheduler's steady state is
*periodic-translating*: once the canonical scheduler state at two
consecutive period boundaries matches modulo a uniform shift of
``(P instructions, C cycles)``, every later period repeats the same
schedule shifted again — until a memory access observes a different
latency than the previous period did.

This module exploits that in two pieces:

- **Static detection** (:func:`period_info`, cached on the compiled
  trace): find the period ``P`` and the longest run ``[lo, hi)`` of
  indices whose decoded record equals their ``-P`` neighbour's and
  whose dependence tuples line up position-for-position with deltas in
  ``{0, P}`` (dep tuples are sorted, hence shift-stable — see
  ``trace_compile``). Positional correspondence is what keeps
  stall-blame tie-breaking (`first maximal producer`) aligned across
  periods.

- **Runtime replay** (:class:`PeriodicReplayer`, shared by the scan
  and event schedulers): at each boundary ``b = lo + q*P`` capture a
  relative signature of the canonical scheduler state (pending set,
  per-instruction wake/ready/completion clamped to the current cycle,
  FU pools, store buffer). When two consecutive boundary signatures
  match, whole periods are *replayed* instead of scheduled: the
  period's recorded memory accesses are performed for real — shifted
  by ``(m*P, m*C)`` — under
  :meth:`~repro.memory.hierarchy.MemoryHierarchy.begin_speculation`,
  and each load's latency is verified against the recorded one. A
  mismatch rolls the hierarchy back and falls out to the scalar loop
  at the exact pre-period state; a match commits and the scheduler
  state is reconstructed at the end of the chain by translating the
  captured signature. Stall counters advance by ``k`` times the
  recorded per-period deltas. A period with no memory operations
  verifies for free (pure-compute loops replay at zero cost).

Clamping soundness: canonical values that are ``<= cycle`` are
interchangeable with any other ``<= cycle`` value — every consumer
(wake maxima, pool first-free-unit selection, store-buffer drain,
stall blame when the head's wake exceeds ``cycle``) only distinguishes
*future* values, except the store-buffer serialization point which
tests ``store_tail < cycle`` and therefore keeps the ``== cycle`` case
distinct in the signature.

SimStats stay bit-identical to the scalar engines on every path; the
equivalence suite sweeps periodic traces with replay on and off.
Set ``REPRO_NO_PERIOD_REPLAY=1`` to disable replay globally.
"""

import os
from heapq import heapify

import numpy as np

_INF = 1 << 60

#: traces shorter than this are never analyzed
MIN_N = 512
#: the valid run must span at least this many periods
MIN_PERIODS = 4
#: ... and at least this many instructions — replay bookkeeping is not
#: worth setting up for short bursts
MIN_REGION = 256
#: reject regions whose carried-dependence span exceeds this many
#: periods (signature capture cost grows with the span)
MAX_SPAN_PERIODS = 8
#: consecutive-failure backoff cap, in boundary crossings
MAX_COOLDOWN = 64
#: boundaries are placed every multiple of the period of at least this
#: many instructions — small structural periods would otherwise make
#: signature capture itself the hot loop
MIN_STRIDE = 16
#: how many recent boundary signatures to retain for matching; the
#: schedule period is often a multiple of the structural period (e.g.
#: one cache-line miss every line_bytes / elem_bytes iterations), so a
#: crossing must be comparable against several strides back
HIST_DEPTH = 48

_ENV_DISABLE = "REPRO_NO_PERIOD_REPLAY"


def replay_enabled():
    return os.environ.get(_ENV_DISABLE, "") in ("", "0")


class PeriodInfo:
    """Static periodicity of one compiled trace (config-specific)."""

    __slots__ = ("period", "lo", "hi", "span", "invariants", "inv_max",
                 "far_edges")

    def __init__(self, period, lo, hi, span, invariants, far_edges):
        self.period = period
        self.lo = lo
        self.hi = hi
        self.span = span
        self.invariants = invariants
        self.inv_max = max(invariants) if invariants else -1
        #: edges from in-region producers to consumers beyond ``hi``;
        #: replay must apply their wake bookkeeping explicitly because
        #: out-of-region consumers are not covered by the signature
        self.far_edges = far_edges


def _candidate_periods(codes, n):
    """Candidate periods from modal occurrence-position differences.

    A record that recurs ``c`` times per loop iteration satisfies
    ``pos[i + c] - pos[i] == P`` for every steady occurrence, so the
    modal difference at stride ``c`` recovers ``P`` even when the raw
    gaps alternate (iterations of uneven length — e.g. a prefetch load
    folded into every fourth copy). Examine the rarer records (fewest
    occurrences per iteration) at small strides.
    """
    counts = np.bincount(codes)
    candidates = []
    examined = 0
    for code in np.argsort(counts, kind="stable"):
        cnt = int(counts[code])
        if cnt < 4 or cnt > n // 2:
            continue
        positions = np.flatnonzero(codes == code)
        for stride in range(1, min(8, cnt - 1) + 1):
            diffs = positions[stride:] - positions[:-stride]
            vals, hits = np.unique(diffs, return_counts=True)
            j = int(np.argmax(hits))
            gap = int(vals[j])
            # demand a clear mode: most steady occurrences agree
            if 3 * int(hits[j]) < 2 * (cnt - stride):
                continue
            if gap > 0 and 4 * gap <= n and gap not in candidates:
                candidates.append(gap)
        examined += 1
        if examined >= 4 or len(candidates) >= 12:
            break
    return candidates


def _longest_valid_run(codes, cnt, cols, period, n):
    """Longest run of indices that are valid ``+period`` copies.

    Index ``i`` is valid when its record equals ``i - period``'s, its
    dependence tuple maps onto the earlier one position-for-position
    with per-position deltas in ``{0, period}``, and the delta vector
    equals the previous copy's. Uniform per-position deltas make the
    mapping compose: translation by any multiple ``g * period`` keeps
    carried edges carried (``+ g*period``) and invariant edges
    invariant — the runtime matches boundary states several periods
    apart (schedule periods are often a cache-line multiple of the
    structural period), so single-step validity is not enough.
    """
    if period >= n:
        return 0, 0
    good = np.zeros(n, dtype=bool)
    ok = (codes[period:] == codes[:-period]) & (cnt[period:] == cnt[:-period])
    deltas = []
    for col in cols:
        x = col[period:]
        have = x >= 0
        # cnt equality forces equal presence patterns (dep tuples are
        # sorted, so slot k exists iff k < len); absent-in-both slots
        # get a sentinel that compares equal in the stability test
        d = np.where(have, x - col[:-period], -1)
        ok &= ~have | (d == 0) | (d == period)
        deltas.append(d)
    good[period:] = ok
    if deltas and n > 2 * period:
        stable = np.ones(n - 2 * period, dtype=bool)
        for d in deltas:
            stable &= d[period:] == d[:-period]
        # a delta-vector change between consecutive in-run copies
        # breaks the run (slightly conservative at run starts)
        good[2 * period:] &= stable | ~ok[:-period]
    bad = np.flatnonzero(~good)
    starts = bad + 1
    ends = np.append(bad[1:], n)
    lens = ends - starts
    j = int(np.argmax(lens))
    if lens[j] <= 0:
        return 0, 0
    return int(starts[j]), int(ends[j])


def _analyze(trace):
    n = trace.n
    if n < MIN_N:
        return None
    info = trace.info
    deps = trace.deps
    code_of = {}
    codes = []
    for rec in info:
        code = code_of.get(rec)
        if code is None:
            code = len(code_of)
            code_of[rec] = code
        codes.append(code)
    codes = np.asarray(codes, dtype=np.int64)

    # dependence tuples as sentinel-padded columns for the vectorized
    # run scan (dep counts are tiny: at most a few sources per op)
    max_k = max(map(len, deps))
    cnt = np.zeros(n, dtype=np.int64)
    cols = [np.full(n, -1, dtype=np.int64) for _ in range(max_k)]
    for i, dd in enumerate(deps):
        if dd:
            cnt[i] = len(dd)
            for k, d in enumerate(dd):
                cols[k][i] = d

    best = None
    for period in _candidate_periods(codes, n):
        lo, hi = _longest_valid_run(codes, cnt, cols, period, n)
        if hi - lo < MIN_PERIODS * period or hi - lo < MIN_REGION:
            continue
        if (best is None or hi - lo > best[1] - best[0]
                or (hi - lo == best[1] - best[0] and period < best[2])):
            best = (lo, hi, period)
    if best is None:
        return None
    lo, hi, period = best

    span = 0
    invariants = set()
    for i in range(lo, hi):
        d0 = deps[i - period]
        for d, p0 in zip(deps[i], d0):
            if d == p0:
                invariants.add(d)
            else:
                s = i - d
                if s > span:
                    span = s
    if span > MAX_SPAN_PERIODS * period:
        return None

    far = {}
    for j in range(hi, n):
        for d in deps[j]:
            if lo <= d < hi:
                far.setdefault(d, []).append(j)
    far_edges = tuple(sorted((d, tuple(js)) for d, js in far.items()))
    return PeriodInfo(period, lo, hi, span, frozenset(invariants), far_edges)


def period_info(trace):
    """Cached :class:`PeriodInfo` for ``trace`` (None if aperiodic)."""
    cached = trace._period
    if cached is None:
        cached = _analyze(trace)
        trace._period = cached if cached is not None else False
        return cached
    return cached or None


def replayer_for(trace, config, hierarchy, pools, wake, n_wait, ready_acc,
                 complete_at, nxt, prv, head_node):
    """A :class:`PeriodicReplayer` bound to one scheduler run, or None."""
    if config.window <= 1 or not replay_enabled():
        return None
    pinfo = period_info(trace)
    if pinfo is None:
        return None
    return PeriodicReplayer(pinfo, trace, config, hierarchy, pools, wake,
                            n_wait, ready_acc, complete_at, nxt, prv,
                            head_node)


class PeriodicReplayer:
    """Boundary-crossing state machine driving one scheduler run.

    The scheduler calls :meth:`on_boundary` from the top of its outer
    loop whenever the oldest pending instruction has reached
    ``next_trigger``, passing (and receiving back) its scalar locals.
    Everything list-shaped (wake/ready/completion columns, the pending
    linked list, FU pools) is shared by reference.
    """

    def __init__(self, pinfo, trace, config, hierarchy, pools, wake,
                 n_wait, ready_acc, complete_at, nxt, prv, head_node):
        self.period = pinfo.period
        self.lo = pinfo.lo
        self.hi = pinfo.hi
        self.span = pinfo.span
        self.invariants = pinfo.invariants
        self.inv_max = pinfo.inv_max
        self.far_edges = pinfo.far_edges
        self.n = trace.n
        self.addr_col = trace.addr
        self.size_col = trace.size
        self.window = config.window
        self.hierarchy = hierarchy
        self.pools = pools
        self.wake = wake
        self.n_wait = n_wait
        self.ready_acc = ready_acc
        self.complete_at = complete_at
        self.nxt = nxt
        self.prv = prv
        self.head_node = head_node
        stride = pinfo.period
        if stride < MIN_STRIDE:
            stride *= -(-MIN_STRIDE // stride)
        self.stride = stride
        self.next_trigger = pinfo.lo + stride
        #: recent crossings: [b, cycle, sig, counters, off_mem, off_iss]
        self.history = []
        self.cooldown = 0
        self._fail_streak = 0
        self.last_f2 = 0       # first never-issued index after a replay

    # -- boundary handling -------------------------------------------------

    def on_boundary(self, head, cycle, max_issued, store_buffer, sb_head,
                    store_tail, last_completion, st_fu, st_rd, st_wr,
                    issue_cycles, rec_mem, rec_iss):
        """Handle the crossing of ``next_trigger`` by the pending head.

        Returns the (possibly fast-forwarded) scheduler locals:
        ``(next_trigger, rec_mem, rec_iss, k, cycle, sb_head,
        store_tail, last_completion, st_fu, st_rd, st_wr, issue_cycles,
        max_issued)`` where ``k`` is the number of replayed periods.
        """
        stride = self.stride
        b = self.next_trigger
        if head >= b + stride:
            # out-of-order issue drained the head past one or more
            # boundaries in one burst; skip them — their signatures go
            # uncaptured, but the continuous recording stays valid
            b += ((head - b) // stride) * stride
        if rec_mem is None:
            rec_mem = []
            rec_iss = []
        sig = self._capture(b, cycle, head, max_issued, store_buffer,
                            sb_head, store_tail, last_completion)
        counters = (st_fu, st_rd, st_wr, issue_cycles)
        k = 0
        history = self.history
        if self.cooldown == 0 and b >= self.span:
            # newest-first: the most recent match gives the smallest
            # effective period (the schedule's true super-period)
            for idx in range(len(history) - 1, -1, -1):
                ent = history[idx]
                if ent[2] != sig:
                    continue
                period_eff = b - ent[0]
                cycles_per = cycle - ent[1]
                if (cycles_per > 0 and self.inv_max < head
                        and self._invariants_quiet(cycle)):
                    k = self._replay_chain(b, cycle, cycles_per, period_eff,
                                           max_issued, rec_mem[ent[4]:])
                    if k:
                        self._fail_streak = 0
                        h_ctr = ent[3]
                        st_fu += k * (st_fu - h_ctr[0])
                        st_rd += k * (st_rd - h_ctr[1])
                        st_wr += k * (st_wr - h_ctr[2])
                        issue_cycles += k * (issue_cycles - h_ctr[3])
                        counters = (st_fu, st_rd, st_wr, issue_cycles)
                        self._apply_far_edges(k, period_eff, cycles_per,
                                              rec_iss[ent[5]:])
                        b += k * period_eff
                        cycle += k * cycles_per
                        max_issued += k * period_eff
                        (sb_head, store_tail,
                         last_completion) = self._reconstruct(
                            sig, b, cycle, store_buffer, last_completion)
                        del history[:]
                        del rec_mem[:]
                        del rec_iss[:]
                    else:
                        self._fail_streak += 1
                        self.cooldown = min(2 << self._fail_streak,
                                            MAX_COOLDOWN)
                break
        if not k and self.cooldown:
            self.cooldown -= 1
        next_trigger = b + stride
        if next_trigger + stride + self.window > self.hi:
            # too close to the region end for another verifiable period
            next_trigger = _INF
            rec_mem = None
            rec_iss = None
            del history[:]
        else:
            history.append([b, cycle, sig, counters,
                            len(rec_mem), len(rec_iss)])
            if len(history) > HIST_DEPTH:
                del history[0]
                cut_m = history[0][4]
                cut_i = history[0][5]
                if cut_m:
                    del rec_mem[:cut_m]
                    for ent in history:
                        ent[4] -= cut_m
                if cut_i:
                    del rec_iss[:cut_i]
                    for ent in history:
                        ent[5] -= cut_i
        self.next_trigger = next_trigger
        return (next_trigger, rec_mem, rec_iss, k, cycle, sb_head,
                store_tail, last_completion, st_fu, st_rd, st_wr,
                issue_cycles, max_issued)

    def _apply_far_edges(self, k, period, cycles_per, rec_iss):
        """Apply the wake bookkeeping replay skipped for far consumers.

        Every index issued in replay period ``m`` is the ``+ m*period``
        copy of an index issued in the recorded period (the signature
        match forces period issue sets to be exact translates), so a
        far producer's completion is its recorded copy's completion
        shifted by ``m * cycles_per``. ``period`` here is the effective
        (matched) period, a multiple of the structural one.
        """
        far = self.far_edges
        if not far:
            return
        rec_done = {}
        min_i = _INF
        max_i = -1
        for i, done in rec_iss:
            rec_done[i] = done
            if i < min_i:
                min_i = i
            if i > max_i:
                max_i = i
        if max_i < 0:
            return
        ready_acc = self.ready_acc
        n_wait = self.n_wait
        wake = self.wake
        complete_at = self.complete_at
        for d, consumers in far:
            m = -((max_i - d) // period)
            if m < 1:
                m = 1
            m_hi = (d - min_i) // period
            if m_hi > k:
                m_hi = k
            while m <= m_hi:
                done = rec_done.get(d - m * period)
                if done is not None:
                    done += m * cycles_per
                    complete_at[d] = done
                    for j in consumers:
                        if ready_acc[j] < done:
                            ready_acc[j] = done
                        left = n_wait[j] - 1
                        n_wait[j] = left
                        if not left:
                            wake[j] = ready_acc[j]
                    break
                m += 1

    def _invariants_quiet(self, cycle):
        complete_at = self.complete_at
        for d in self.invariants:
            if complete_at[d] > cycle:
                return False
        return True

    # -- signature capture -------------------------------------------------

    def _capture(self, b, cycle, head, max_issued, store_buffer, sb_head,
                 store_tail, last_completion):
        """Canonical scheduler state relative to ``(b, cycle)``.

        Values at or below ``cycle`` are clamped (they are mutually
        interchangeable for every consumer); future values become
        cycle-relative offsets so that translated states compare equal.
        """
        span = self.span
        f_next = max_issued + 1  # first never-issued index; >= head
        lo = b - span
        if lo < 0:
            lo = 0
        # clamp to the valid region: beyond ``hi`` the trace is not a
        # periodic copy, so translated state would be meaningless there
        # (far consumers get their exact bookkeeping separately)
        hi_r = f_next + span
        if hi_r > self.hi:
            hi_r = self.hi
        wake = self.wake
        n_wait = self.n_wait
        ready_acc = self.ready_acc
        complete_at = self.complete_at
        nxt = self.nxt

        pend = []
        i = head
        while i < f_next:
            pend.append(i - b)
            i = nxt[i]

        state = []
        for j in range(lo, hi_r):
            w = wake[j]
            if w >= _INF:
                w = -1
            elif w > cycle:
                w -= cycle
            else:
                w = 0
            ra = ready_acc[j]
            ra = ra - cycle if ra > cycle else 0
            ca = complete_at[j]
            ca = ca - cycle if ca > cycle else 0
            state.append((w, n_wait[j], ra, ca))

        pools_sig = tuple(
            None if pool is None else
            tuple((f - cycle) if f > cycle else 0 for f in pool)
            for pool in self.pools
        )
        sb_sig = tuple(t - cycle for t in store_buffer[sb_head:] if t > cycle)
        # the drain serialization point distinguishes == cycle from
        # < cycle (the scalar engines test `store_tail < cycle`)
        tail_sig = store_tail - cycle if store_tail >= cycle else -1
        lc_sig = last_completion - cycle if last_completion > cycle else 0
        return (head - b, f_next - b, b - lo, hi_r - b, tuple(pend),
                tuple(state), pools_sig, sb_sig, tail_sig, lc_sig)

    # -- replay ------------------------------------------------------------

    def _replay_chain(self, b, cycle, cycles_per, period, max_issued,
                      rec_mem):
        """Replay verified periods; returns how many committed."""
        hi = self.hi
        window = self.window
        hierarchy = self.hierarchy
        access = hierarchy.access
        addr_col = self.addr_col
        size_col = self.size_col
        f_next = max_issued + 1
        k = 0
        while f_next + (k + 1) * period + window <= hi:
            shift_i = (k + 1) * period
            shift_c = (k + 1) * cycles_per
            token = hierarchy.begin_speculation()
            ok = True
            for i, t, lat, is_write in rec_mem:
                result = access(addr_col[i + shift_i], size_col[i + shift_i],
                                is_write=is_write, now_cycle=t + shift_c)
                if not is_write and result.latency != lat:
                    ok = False
                    break
            if not ok:
                hierarchy.rollback_speculation(token)
                break
            hierarchy.commit_speculation(token)
            k += 1
        return k

    # -- state reconstruction ----------------------------------------------

    def _reconstruct(self, sig, b2, c2, store_buffer, last_completion_in):
        """Translate the captured signature to ``(b2, c2)`` in place."""
        (_head_rel, f_rel, lo_rel, _hi_rel, pend, state, pools_sig, sb_sig,
         tail_sig, lc_sig) = sig
        n = self.n
        stop = self.hi
        wake = self.wake
        n_wait = self.n_wait
        ready_acc = self.ready_acc
        complete_at = self.complete_at
        nxt = self.nxt
        prv = self.prv

        j = b2 - lo_rel
        for w, nw, ra, ca in state:
            if j >= stop:
                break
            wake[j] = _INF if w < 0 else (w + c2 if w else 0)
            n_wait[j] = nw
            ready_acc[j] = ra + c2 if ra else 0
            complete_at[j] = ca + c2 if ca else 0
            j += 1

        node = self.head_node
        for rel in pend:
            i = b2 + rel
            nxt[node] = i
            prv[i] = node
            node = i
        f2 = b2 + f_rel
        nxt[node] = f2
        if f2 <= n:
            prv[f2] = node
        self.last_f2 = f2

        for pool, psig in zip(self.pools, pools_sig):
            if pool is not None:
                for unit, f in enumerate(psig):
                    pool[unit] = f + c2 if f else 0

        store_buffer[:] = [t + c2 for t in sb_sig]
        store_tail = tail_sig + c2 if tail_sig >= 0 else 0
        last_completion = lc_sig + c2 if lc_sig else last_completion_in
        return 0, store_tail, last_completion

    # -- event-scheduler queue rebuild --------------------------------------

    def rebuild_window_queues(self, cycle, shift):
        """Fresh cand/parked/events heaps and window pointer after replay.

        The event scheduler's heaps and FU-retry queues are derived
        acceleration state; rebuilding them fresh from the canonical
        columns is exact (an entry that cannot issue re-parks itself on
        its first attempt).
        """
        n = self.n
        nxt = self.nxt
        wake = self.wake
        n_wait = self.n_wait
        head_node = self.head_node
        window = self.window

        node = nxt[head_node]
        steps = window - 1
        while steps and node < n:
            node = nxt[node]
            steps -= 1
        if node >= n:
            window_end = head_node
            we_idx = n
        else:
            window_end = node
            we_idx = node

        cand = []
        parked = []
        events = []
        j = nxt[head_node]
        while j < n:
            if not n_wait[j]:
                w = wake[j]
                if w <= cycle:
                    if j <= we_idx:
                        cand.append(j)
                    else:
                        parked.append(j)
                else:
                    events.append((w << shift) | j)
            j = nxt[j]
        heapify(cand)
        heapify(parked)
        heapify(events)
        return window_end, we_idx, cand, parked, events


__all__ = ["PeriodInfo", "PeriodicReplayer", "period_info", "replay_enabled",
           "replayer_for"]
