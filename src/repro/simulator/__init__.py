"""Cycle-approximate vector pipeline simulator.

Replaces the paper's gem5 (ARM SVE) and bare-metal RTL (RISC-V)
platforms with a trace-driven scoreboard model: instructions issue
in-order within a configurable lookahead window, occupy functional
units with per-opcode latency/initiation-interval, and loads resolve
through the :mod:`repro.memory` hierarchy. Stalls are attributed to the
paper's three categories (functional unit / read / write).
"""

from repro.simulator.config import MachineConfig, a64fx_config, sargantana_config
from repro.simulator.engine import (
    ENGINES,
    engine,
    get_default_engine,
    set_default_engine,
)
from repro.simulator.stats import SimStats
from repro.simulator.pipeline import PipelineSimulator, UnsupportedInstructionError
from repro.simulator.batch_pipeline import run_batch
from repro.simulator.trace_compile import CompiledTrace, compile_trace
from repro.simulator.executor import FlatMemory, FunctionalExecutor
from repro.simulator.machine import Machine
from repro.simulator.multicore import (
    CoreRun,
    MulticoreStats,
    run_multicore,
)

__all__ = [
    "MachineConfig",
    "a64fx_config",
    "sargantana_config",
    "SimStats",
    "PipelineSimulator",
    "UnsupportedInstructionError",
    "FlatMemory",
    "FunctionalExecutor",
    "Machine",
    "ENGINES",
    "engine",
    "get_default_engine",
    "set_default_engine",
    "run_batch",
    "CompiledTrace",
    "compile_trace",
    "CoreRun",
    "MulticoreStats",
    "run_multicore",
]
