"""Compile instruction traces into structure-of-arrays form.

The batch pipeline engine never touches :class:`Instruction` objects in
its scheduling loop: a trace is compiled exactly once per (program,
machine config) pair into flat per-instruction records plus SSA
dependence edges, and every later pass works on those. The compiled
form also yields the Figure-17 vector-mix classification as a free
by-product, which is installed into the program's
``classify_vector_mix`` cache so experiment post-processing stops
re-walking the trace.

Per-opcode decode (functional-unit class, latency, initiation interval,
load/store/vector flags) depends only on the machine config's FU
tables, so it is memoized in a module-level table keyed by those
tables' *values* (an identity-keyed or attribute-stashed memo served
stale decode after in-place mutation of the frozen dataclass's dict
fields); per-instruction work is one dict lookup plus the register
dependence bookkeeping.

Compiled records are also persisted across runs through
:mod:`repro.simulator.trace_cache`: :func:`compiled_for` probes the
content-addressed cache before compiling and publishes fresh compiles
into it, so pool workers and resumed sweeps load shared records
instead of recompiling per shard.
"""

from collections import Counter

import numpy as np

from repro.isa.instructions import FUClass, OPCODE_FU, Opcode, VECTOR_OPCODES

LOAD_OPCODES = frozenset({Opcode.VLOAD, Opcode.VLOAD_STRIDED, Opcode.SLOAD})
STORE_OPCODES = frozenset({Opcode.VSTORE, Opcode.SSTORE})

#: stable functional-unit id assignment used by every compiled trace
FU_LIST = tuple(FUClass)
FU_INDEX = {fu: index for index, fu in enumerate(FU_LIST)}

# opcode-record slots (records shared by all instructions of one opcode)
FU_ID, LATENCY, INTERVAL, IS_LOAD, IS_STORE, IS_VECTOR = range(6)

_opcode_tables = {}

#: decode tables are tiny, but hypothesis fuzz sweeps thousands of
#: random configs through the engine — cap the memo so it cannot grow
#: without bound in one process
_TABLE_MEMO_CAP = 512


def _table_key(config):
    """The config content the decode table actually depends on.

    Value-based (not object identity, not an attribute stashed on the
    config): the dict fields of the frozen ``MachineConfig`` dataclass
    are mutable in place, and a table memoized per object silently kept
    serving pre-mutation decode.
    """
    return (
        tuple(sorted(
            (fu.value, latency) for fu, latency in config.fu_latency.items()
        )),
        tuple(sorted(
            (fu.value, interval)
            for fu, interval in config.fu_interval.items()
        )),
        tuple(sorted(
            (op.value, latency)
            for op, latency in config.opcode_latency.items()
        )),
    )


def opcode_table(config):
    """``opcode -> (fu_id, latency, interval, is_load, is_store, is_vector)``.

    The latency column resolves the scalar engine's per-issue logic
    ahead of time: ``opcode_latency`` overrides ``fu_latency``, and the
    accumulator-forwarding opcodes (CAMP / MMLA) pipeline at their
    initiation interval. Loads still get their real latency from the
    memory hierarchy at issue time; the column holds the L1-style
    baseline for them and is unused by the scheduler.
    """
    key = _table_key(config)
    table = _opcode_tables.get(key)
    if table is not None:
        return table
    table = {}
    for op in Opcode:
        fu = OPCODE_FU[op]
        interval = config.fu_interval.get(fu, 1)
        is_load = op in LOAD_OPCODES
        is_store = op in STORE_OPCODES
        if is_load or is_store:
            # the scalar engine never consults latency_of for memory
            # ops (loads resolve through the hierarchy, stores retire
            # through the buffer); the column is a decode-only baseline
            latency = config.fu_latency.get(fu, 0)
        else:
            if op in config.opcode_latency:
                latency = config.opcode_latency[op]
            elif fu in config.fu_latency:
                latency = config.fu_latency[fu]
            else:
                # unresolvable, exactly like config.latency_of: compile
                # raises the same KeyError the scalar engine would at
                # issue — but only if the trace actually uses the opcode
                latency = None
            if latency is not None and op in (Opcode.CAMP, Opcode.MMLA):
                # accumulator forwarding pipelines at the interval
                latency = interval
        table[op] = (
            FU_INDEX[fu],
            latency,
            interval,
            is_load,
            is_store,
            op in VECTOR_OPCODES,
        )
    if len(_opcode_tables) >= _TABLE_MEMO_CAP:
        _opcode_tables.clear()
    _opcode_tables[key] = table
    return table


class CompiledTrace:
    """One trace compiled against one machine config.

    ``info[i]`` is the instruction's decoded opcode record — a tuple
    *shared* between all instructions of the same opcode (no per-
    instruction allocation): ``(fu_id, latency, interval, is_load,
    is_store, is_vector)``. Memory operands live in the parallel
    ``addr`` / ``size`` columns.
    """

    __slots__ = (
        "n", "info", "addr", "size", "deps", "dependents", "mix",
        "mem_index", "mem_addr", "mem_size", "mem_write", "fu_bound",
        "totals", "_arrays", "_period",
    )

    def __init__(self, n, info, addr, size, deps, dependents, mix,
                 mem_index, mem_addr, mem_size, mem_write, fu_bound=0,
                 totals=None):
        self.n = n
        self.info = info              # list[shared opcode record tuples]
        self.addr = addr              # list[int]; 0 for non-memory ops
        self.size = size              # list[int]; 0 for non-memory ops
        self.deps = deps              # list[tuple[int, ...]] SSA dependences
        self.dependents = dependents  # list[list[int] | None] reverse edges
        self.mix = mix                # {"read": r, "write": w, "alu": a}
        self.mem_index = mem_index    # program order of memory ops
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.mem_write = mem_write
        #: static occupancy lower bound: max over FU classes of
        #: ceil(sum-of-intervals / units); the batch engine uses it to
        #: pick between its scan and event schedulers
        self.fu_bound = fu_bound
        #: (n_vector, n_loads, n_stores, bytes_loaded, bytes_stored,
        #: per-class busy cycles) — every instruction issues exactly
        #: once, so these SimStats counters are trace constants the
        #: schedulers never have to accumulate
        self.totals = totals
        self._arrays = None
        #: lazy steady-state period analysis (repro.simulator.period_replay);
        #: derived from the compiled columns, so never serialized
        self._period = None

    def vector_mix(self):
        """Figure-17 R/W/Alu classification of the vector instructions."""
        return dict(self.mix)

    def memory_arrays(self):
        """Memory-op streams as numpy arrays (program order)."""
        return (
            np.asarray(self.mem_index, dtype=np.int64),
            np.asarray(self.mem_addr, dtype=np.int64),
            np.asarray(self.mem_size, dtype=np.int64),
            np.asarray(self.mem_write, dtype=bool),
        )

    def arrays(self):
        """Full structure-of-arrays view (numpy), built on first use.

        Keys: ``fu_id``, ``latency``, ``interval``, ``is_load``,
        ``is_store``, ``is_vector``, ``addr``, ``size``. The scheduler
        itself consumes the plain-list form (CPython indexes lists
        faster than 0-d numpy scalars); the numpy view serves analysis
        passes and tests.
        """
        if self._arrays is None:
            info = self.info
            self._arrays = {
                "fu_id": np.fromiter((r[FU_ID] for r in info), np.int16, self.n),
                "latency": np.fromiter((r[LATENCY] for r in info), np.int32, self.n),
                "interval": np.fromiter((r[INTERVAL] for r in info), np.int32, self.n),
                "is_load": np.fromiter((r[IS_LOAD] for r in info), bool, self.n),
                "is_store": np.fromiter((r[IS_STORE] for r in info), bool, self.n),
                "is_vector": np.fromiter((r[IS_VECTOR] for r in info), bool, self.n),
                "addr": np.asarray(self.addr, dtype=np.int64),
                "size": np.asarray(self.size, dtype=np.int64),
            }
        return self._arrays


#: process-wide count of actual trace compiles (memo and cache hits do
#: not count); pool workers report deltas so the fan-out benches can
#: assert the parent shipped every compiled record
compile_events = 0


def compile_trace(program, config):
    """Compile ``program`` for ``config`` into a :class:`CompiledTrace`.

    Dependences are extracted SSA-style exactly like the scalar engine:
    each instruction depends on the specific prior writer of each of
    its source registers (register renaming — architectural reuse does
    not serialize), and the dependence tuple is built with the same
    ``tuple(sorted(set(...)))`` construction so stall attribution
    tie-breaks identically. Sorted order is also what makes dependence
    tuples *shift-stable* — ``deps[i + P]`` of a periodic trace region
    lines up position-for-position with ``deps[i]`` — which the
    periodic-replay detector relies on for stall-blame correspondence.
    """
    global compile_events
    compile_events += 1
    table = opcode_table(config)
    instructions = list(program)
    n = len(instructions)
    # decode pass: one shared record per opcode, C-speed loops
    info = [table[inst.opcode] for inst in instructions]
    rec_counts = Counter(info)
    for rec in rec_counts:
        if rec[1] is None:
            # the scalar engine's latency_of would raise this KeyError
            # at the instruction's first issue; surface it at compile
            raise KeyError(FU_LIST[rec[0]])
    addr_col = [0] * n
    size_col = [0] * n
    deps = [()] * n
    dependents = [None] * n
    mem_index = []
    mem_addr = []
    mem_size = []
    mem_write = []
    mi_append = mem_index.append
    ma_append = mem_addr.append
    ms_append = mem_size.append
    mw_append = mem_write.append
    mix_read = mix_write = mix_alu = 0
    last_writer = {}
    lw_get = last_writer.get
    for i, inst in enumerate(instructions):
        rec = info[i]
        if rec[3] or rec[4]:
            addr = inst.addr
            size = inst.size
            addr_col[i] = addr
            size_col[i] = size
            mi_append(i)
            ma_append(addr)
            ms_append(size)
            mw_append(rec[4])
        src = inst.src
        if src:
            if len(src) == 1:
                w = lw_get(src[0])
                if w is not None:
                    dd = (w,)
                    deps[i] = dd
                    lst = dependents[w]
                    if lst is None:
                        dependents[w] = [i]
                    else:
                        lst.append(i)
            else:
                dep_list = [w for w in map(lw_get, src) if w is not None]
                if dep_list:
                    dd = tuple(sorted(set(dep_list)))
                    deps[i] = dd
                    for d in dd:
                        lst = dependents[d]
                        if lst is None:
                            dependents[d] = [i]
                        else:
                            lst.append(i)
        dst = inst.dst
        if dst:
            if len(dst) == 1:
                last_writer[dst[0]] = i
            else:
                for d in dst:
                    last_writer[d] = i
    # mix, counter totals and FU-occupancy bound from the record counts
    class_busy = [0] * len(FU_LIST)
    n_vector = n_loads = n_stores = 0
    for rec, count in rec_counts.items():
        class_busy[rec[0]] += rec[2] * count
        if rec[3]:
            n_loads += count
        elif rec[4]:
            n_stores += count
        if rec[5]:
            n_vector += count
            if rec[3]:
                mix_read += count
            elif rec[4]:
                mix_write += count
            else:
                mix_alu += count
    bytes_loaded = bytes_stored = 0
    for size, write in zip(mem_size, mem_write):
        if write:
            bytes_stored += size
        else:
            bytes_loaded += size
    mix = {"read": mix_read, "write": mix_write, "alu": mix_alu}
    fu_bound = 0
    for fu_id, busy in enumerate(class_busy):
        if busy:
            units = config.fu_counts.get(FU_LIST[fu_id], 0)
            if units:
                bound = -(-busy // units)
                if bound > fu_bound:
                    fu_bound = bound
    totals = (n_vector, n_loads, n_stores, bytes_loaded, bytes_stored,
              class_busy)
    # publish the mix so Program.classify_vector_mix becomes O(1)
    program._vector_mix_cache = (n, mix)
    return CompiledTrace(n, info, addr_col, size_col, deps, dependents, mix,
                         mem_index, mem_addr, mem_size, mem_write,
                         fu_bound=fu_bound, totals=totals)


_COMPILED_ATTR = "_compiled_traces"


def compiled_for(program, config):
    """Memoized :func:`compile_trace` with a persistent tier behind it.

    The in-process memo lives on the program object as a small list of
    ``(machine digest, length, trace)`` entries — content-keyed (an
    identity-compared config kept serving stale traces after in-place
    mutation) with a length guard in case a builder keeps emitting into
    the program after a compile. Memo misses probe the cross-run
    :mod:`repro.simulator.trace_cache` before compiling, and fresh
    compiles are published back into it.
    """
    from repro.simulator import trace_cache

    n = len(program)
    machine_dig = trace_cache.machine_digest(config)
    entries = getattr(program, _COMPILED_ATTR, None)
    if entries is not None:
        for dig, length, trace in entries:
            if dig == machine_dig and length == n:
                return trace
    trace = trace_cache.fetch(program, config, machine_dig)
    if trace is None:
        from repro.simulator import profiling

        with profiling.phase("trace compile"):
            trace = compile_trace(program, config)
        trace_cache.put(program, config, trace, machine_dig)
    if entries is None:
        entries = []
        try:
            setattr(program, _COMPILED_ATTR, entries)
        except AttributeError:
            return trace  # slotted/foreign program type: skip memoization
    entries.append((machine_dig, n, trace))
    return trace
