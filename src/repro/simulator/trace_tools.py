"""Trace analysis utilities.

Static analyses over instruction traces that complement the pipeline
simulator: dataflow critical path (the latency lower bound no amount
of issue width can beat), per-functional-unit occupancy lower bounds,
and arithmetic-intensity summaries. Used by the ablation experiments
and handy when designing new kernels.
"""

from dataclasses import dataclass
from typing import Dict

from repro.isa.instructions import FUClass, Opcode


@dataclass
class TraceAnalysis:
    """Static properties of one instruction trace on one machine."""

    instructions: int
    critical_path_cycles: int
    fu_bound_cycles: int
    issue_bound_cycles: int
    bytes_loaded: int
    bytes_stored: int
    fu_cycles: Dict[FUClass, int]

    @property
    def latency_bound(self):
        """Best achievable cycles: max of all three lower bounds."""
        return max(
            self.critical_path_cycles, self.fu_bound_cycles, self.issue_bound_cycles
        )

    def arithmetic_intensity(self, macs):
        """MACs per byte of memory traffic."""
        traffic = self.bytes_loaded + self.bytes_stored
        return macs / traffic if traffic else float("inf")


def _latency(config, inst):
    if inst.opcode in (Opcode.CAMP, Opcode.MMLA):
        # accumulator forwarding: chains pipeline at the interval
        return config.interval_of(inst.fu_class)
    return config.latency_of(inst)


def analyze_trace(program, config):
    """Compute :class:`TraceAnalysis` for ``program`` on ``config``.

    The critical path uses SSA dependences (same renaming assumption
    as the pipeline) with load latencies taken as L1 hits; the FU
    bound divides per-class occupancy by the unit count; the issue
    bound divides instruction count by issue width.
    """
    last_writer = {}
    finish = []  # earliest finish time of each instruction
    fu_busy = {}
    for index, inst in enumerate(program):
        start = 0
        for src in inst.src:
            writer = last_writer.get(src)
            if writer is not None:
                start = max(start, finish[writer])
        latency = _latency(config, inst)
        finish.append(start + latency)
        for dst in inst.dst:
            last_writer[dst] = index
        interval = config.interval_of(inst.fu_class)
        fu_busy[inst.fu_class] = fu_busy.get(inst.fu_class, 0) + interval

    critical = max(finish) if finish else 0
    fu_bound = 0
    for fu, busy in fu_busy.items():
        units = config.units_of(fu)
        if units == 0:
            raise ValueError(
                "trace uses %s but machine %r has no such unit"
                % (fu.value, config.name)
            )
        fu_bound = max(fu_bound, -(-busy // units))
    issue_bound = -(-len(program) // config.issue_width)
    return TraceAnalysis(
        instructions=len(program),
        critical_path_cycles=critical,
        fu_bound_cycles=fu_bound,
        issue_bound_cycles=issue_bound,
        bytes_loaded=program.bytes_loaded(),
        bytes_stored=program.bytes_stored(),
        fu_cycles=fu_busy,
    )


def efficiency_report(program, config, simulated_cycles):
    """How close a simulated run came to its static lower bound."""
    analysis = analyze_trace(program, config)
    bound = analysis.latency_bound
    return {
        "lower_bound_cycles": bound,
        "simulated_cycles": simulated_cycles,
        "efficiency": bound / simulated_cycles if simulated_cycles else 0.0,
        "binding_constraint": _binding_constraint(analysis),
    }


def _binding_constraint(analysis):
    bound = analysis.latency_bound
    if bound == analysis.critical_path_cycles:
        return "dependency-chain"
    if bound == analysis.fu_bound_cycles:
        return "functional-units"
    return "issue-width"
