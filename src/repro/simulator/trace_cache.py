"""Persistent cross-run cache for compiled traces.

Compiling a trace (:func:`repro.simulator.trace_compile.compile_trace`)
is pure: the resulting :class:`CompiledTrace` depends only on the
program's instruction content, the machine configuration, and the
compiler's own source. Sweep grids overwhelmingly share identical
(program, machine) pairs across points and across worker processes, so
compiled records are persisted content-addressed on

    sha256(program digest x machine digest x compile-source digest)

in a tier beside the experiment result cache: one
``<key>.rptc`` file per record under ``$REPRO_CACHE_DIR/traces``
(default ``~/.cache/repro-camp/traces``). Entries are written
atomically (tempfile + rename, so concurrent writers race harmlessly —
identical content, last rename wins) and verified on load against an
embedded checksum; torn, truncated or otherwise corrupt entries are
dropped and the trace is recompiled. A small in-memory LRU tier in
front of the disk tier serves repeat lookups within one process
(daemon-style reuse across distinct but identical ``Program`` objects).

The payload is a pickle of *builtin types only* (ints, bools, tuples,
lists, dicts) — never a class instance — so records survive unrelated
code churn; the compile-source digest in the key retires every record
whenever the compiler itself (or this module, or the opcode tables it
encodes) changes. The materialized ``tuple(set(...))`` dependence order
is persisted verbatim, which is what keeps scheduler tie-breaks — and
therefore :class:`~repro.simulator.stats.SimStats` — bit-identical
between compiled and cached paths.

``REPRO_NO_TRACE_CACHE=1`` (env, re-read on every lookup so forked or
spawned workers inherit it) or :func:`set_enabled` disable both tiers;
the compiled result is then always rebuilt in place.

This module deliberately does not import :mod:`repro.experiments`:
the simulator layer sits below the experiment layer, so the cache-root
resolution (``$REPRO_CACHE_DIR`` else ``~/.cache/repro-camp``) is
duplicated here and pinned against
:func:`repro.experiments.cache.default_cache_dir` by a test.
"""

import hashlib
import json
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from pathlib import Path

#: bumped whenever the persisted payload layout changes; joins the key,
#: so old records simply stop being found rather than misparsed
FORMAT_VERSION = 1

#: file container: magic + sha256(payload) + payload
MAGIC = b"RPTC0001"

ENV_DISABLE = "REPRO_NO_TRACE_CACHE"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: traces shorter than this skip the persistent tier: the per-program
#: memo in ``compiled_for`` already covers repeat runs of one object,
#: and for tiny traces the digest + disk round-trip costs more than
#: recompiling
MIN_PERSIST_INSTRUCTIONS = 64

#: in-memory LRU capacity (compiled records, not bytes); the default,
#: overridable per process through ``$REPRO_TRACE_CACHE_MEM``
MEMORY_CAP = 128

ENV_MEMORY_CAP = "REPRO_TRACE_CACHE_MEM"


def memory_cap():
    """Effective in-memory LRU capacity.

    ``$REPRO_TRACE_CACHE_MEM`` overrides :data:`MEMORY_CAP` when set to
    a non-negative integer (0 disables the memory tier entirely —
    lookups go straight to disk and nothing is retained). The
    environment is re-read on every call so forked/spawned workers
    inherit the choice, like :func:`enabled`.
    """
    raw = os.environ.get(ENV_MEMORY_CAP)
    if raw:
        try:
            cap = int(raw)
        except ValueError:
            return MEMORY_CAP
        if cap >= 0:
            return cap
    return MEMORY_CAP

_PICKLE_PROTOCOL = 4

_DIGEST_ATTR = "_repro_content_digest"

_memory = OrderedDict()  # key -> CompiledTrace

_enabled_override = None  # None -> consult the environment


class TraceCacheStats:
    """Process-wide hit/miss accounting for both tiers."""

    __slots__ = ("memory_hits", "disk_hits", "misses", "stores", "errors")

    def __init__(self):
        self.reset()

    def reset(self):
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


_stats = TraceCacheStats()


def stats():
    """Counters since process start (or the last :func:`reset_stats`)."""
    return _stats.as_dict()


def reset_stats():
    _stats.reset()


def enabled():
    """Both cache tiers are active (override, else ``$REPRO_NO_TRACE_CACHE``).

    The environment is re-read on every call so worker processes forked
    or spawned after the CLI exports the variable inherit the choice.
    """
    if _enabled_override is not None:
        return _enabled_override
    return not os.environ.get(ENV_DISABLE)


def set_enabled(value):
    """Force the cache on/off process-wide (``None`` restores env control)."""
    global _enabled_override
    _enabled_override = None if value is None else bool(value)


def clear_memory():
    """Drop the in-memory tier (tests; mimics a fresh process)."""
    _memory.clear()


# ---------------------------------------------------------------------------
# key components


def program_digest(program):
    """Content digest of a program's instruction stream.

    Hashes every field :meth:`Instruction._key` compares (opcode,
    registers, dtype, addr, size, imm — everything except ``meta``,
    which never reaches the simulator). The digest is cached on the
    program object with a length guard, so builders that keep emitting
    into a program after a digest invalidate it naturally.
    """
    n = len(program)
    cached = getattr(program, _DIGEST_ATTR, None)
    if cached is not None and cached[0] == n:
        return cached[1]
    keys = [inst._key() for inst in program]
    digest = hashlib.sha256(
        pickle.dumps(keys, protocol=_PICKLE_PROTOCOL)
    ).hexdigest()
    try:
        setattr(program, _DIGEST_ATTR, (n, digest))
    except AttributeError:
        pass  # slotted/foreign program type: recompute next time
    return digest


def predigest(program):
    """Attach the content digest ahead of pickling to a pool worker.

    The cached ``(length, digest)`` attribute travels with the program,
    so every worker skips the digest pass and goes straight to its
    cache probe.
    """
    if len(program) >= MIN_PERSIST_INSTRUCTIONS:
        program_digest(program)


def machine_digest(config):
    """Digest of every :class:`MachineConfig` field, enum keys canonical.

    Computed fresh on every call — the dict-valued fields of the frozen
    dataclass are mutable in place, and a memo keyed on object identity
    would serve stale digests after exactly the kind of mutation the
    opcode-table memo bug served stale tables for.
    """
    payload = {
        "name": config.name,
        "frequency_ghz": config.frequency_ghz,
        "vector_length_bits": config.vector_length_bits,
        "issue_width": config.issue_width,
        "window": config.window,
        "fu_counts": sorted(
            (fu.value, count) for fu, count in config.fu_counts.items()
        ),
        "fu_latency": sorted(
            (fu.value, latency) for fu, latency in config.fu_latency.items()
        ),
        "opcode_latency": sorted(
            (op.value, latency)
            for op, latency in config.opcode_latency.items()
        ),
        "fu_interval": sorted(
            (fu.value, interval)
            for fu, interval in config.fu_interval.items()
        ),
        "cache_configs": [
            [c.name, c.size_bytes, c.line_bytes, c.ways, c.load_to_use]
            for c in config.cache_configs
        ],
        "dram_latency": config.dram_latency,
        "dram_bytes_per_cycle": config.dram_bytes_per_cycle,
        "dram_channels": config.dram_channels,
        "store_buffer": [
            config.store_buffer.entries, config.store_buffer.drain_latency
        ],
        "camp_enabled": config.camp_enabled,
        "prefetch": config.prefetch,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


_source_memo = None  # (fingerprint, digest)


def _compile_source_files():
    from repro.isa import instructions
    from repro.simulator import trace_compile

    return (
        Path(trace_compile.__file__),
        Path(__file__),
        Path(instructions.__file__),
    )


def compile_source_digest():
    """Sha256 over the sources that define compiled-trace semantics.

    Covers the trace compiler, this module, and the ISA opcode tables.
    Memoized behind a cheap mtime/size fingerprint that is re-checked
    on every call, so an editable-install edit (or a long-lived daemon
    outliving a deploy) invalidates the memo instead of serving records
    keyed to dead source.
    """
    global _source_memo
    files = _compile_source_files()
    fingerprint = []
    for path in files:
        stat = path.stat()
        fingerprint.append((str(path), stat.st_mtime_ns, stat.st_size))
    fingerprint = tuple(fingerprint)
    memo = _source_memo
    if memo is not None and memo[0] == fingerprint:
        return memo[1]
    digest = hashlib.sha256()
    for path in files:
        digest.update(path.name.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    hexdigest = digest.hexdigest()
    _source_memo = (fingerprint, hexdigest)
    return hexdigest


def trace_key(program, config, machine_dig=None):
    """The full content address of one (program, machine) compile."""
    if machine_dig is None:
        machine_dig = machine_digest(config)
    raw = "\0".join([
        "trace", str(FORMAT_VERSION), program_digest(program),
        machine_dig, compile_source_digest(),
    ])
    return hashlib.sha256(raw.encode()).hexdigest()


# ---------------------------------------------------------------------------
# disk layout


def cache_root(base=None):
    """The trace tier's directory, resolved from the environment.

    Resolved on *every* call (never cached in a module global): bench
    harnesses and tests redirect ``$REPRO_CACHE_DIR`` mid-process and
    the tier must follow. Mirrors
    :func:`repro.experiments.cache.default_cache_dir` + ``/traces``.
    """
    if base is not None:
        return Path(base) / "traces"
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env) / "traces"
    return Path.home() / ".cache" / "repro-camp" / "traces"


def entry_path(key, base=None):
    return cache_root(base) / key[:2] / (key + ".rptc")


def entry_paths(base=None):
    """Every persisted record file under the tier's root."""
    root = cache_root(base)
    if not root.is_dir():
        return []
    return sorted(root.glob("[0-9a-f][0-9a-f]/*.rptc"))


# ---------------------------------------------------------------------------
# serialization


def serialize_trace(trace):
    """Encode a :class:`CompiledTrace` as a checksummed byte record.

    The payload pickles builtin containers only — the shared per-opcode
    ``info`` tuples, the dependence tuples in their materialized
    ``tuple(set(...))`` order, the ``None``-for-empty ``dependents``
    convention — never the class itself, so a refactor of
    ``CompiledTrace`` cannot break old files (the source digest retires
    them first anyway).
    """
    payload = {
        "version": FORMAT_VERSION,
        "n": trace.n,
        "info": trace.info,
        "addr": trace.addr,
        "size": trace.size,
        "deps": trace.deps,
        "dependents": trace.dependents,
        "mix": trace.mix,
        "mem_index": trace.mem_index,
        "mem_addr": trace.mem_addr,
        "mem_size": trace.mem_size,
        "mem_write": trace.mem_write,
        "fu_bound": trace.fu_bound,
        "totals": trace.totals,
    }
    body = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
    return MAGIC + hashlib.sha256(body).digest() + body


def deserialize_trace(data):
    """Decode :func:`serialize_trace` output; raises on any corruption."""
    from repro.simulator.trace_compile import CompiledTrace

    prefix = len(MAGIC) + 32
    if len(data) < prefix or not data.startswith(MAGIC):
        raise ValueError("bad trace-cache magic")
    body = data[prefix:]
    if hashlib.sha256(body).digest() != data[len(MAGIC):prefix]:
        raise ValueError("trace-cache checksum mismatch")
    payload = pickle.loads(body)
    if not isinstance(payload, dict):
        raise ValueError("trace-cache payload is not a mapping")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError("trace-cache payload version mismatch")
    n = payload["n"]
    trace = CompiledTrace(
        n, payload["info"], payload["addr"], payload["size"],
        payload["deps"], payload["dependents"], payload["mix"],
        payload["mem_index"], payload["mem_addr"], payload["mem_size"],
        payload["mem_write"], fu_bound=payload["fu_bound"],
        totals=payload["totals"],
    )
    if not (len(trace.info) == len(trace.addr) == len(trace.size)
            == len(trace.deps) == len(trace.dependents) == n):
        raise ValueError("trace-cache column lengths disagree")
    if not (len(trace.mem_index) == len(trace.mem_addr)
            == len(trace.mem_size) == len(trace.mem_write)):
        raise ValueError("trace-cache memory columns disagree")
    return trace


def traces_equal(a, b):
    """Field-for-field equality of two compiled traces (tests, benches)."""
    return (
        a.n == b.n
        and a.info == b.info
        and a.addr == b.addr
        and a.size == b.size
        and a.deps == b.deps
        and a.dependents == b.dependents
        and a.mix == b.mix
        and a.mem_index == b.mem_index
        and a.mem_addr == b.mem_addr
        and a.mem_size == b.mem_size
        and a.mem_write == b.mem_write
        and a.fu_bound == b.fu_bound
        and a.totals == b.totals
    )


# ---------------------------------------------------------------------------
# the two tiers


def _memory_insert(key, trace):
    cap = memory_cap()
    if cap == 0:
        return
    _memory[key] = trace
    _memory.move_to_end(key)
    while len(_memory) > cap:
        _memory.popitem(last=False)


def _install_mix(program, trace):
    # exactly what compile_trace publishes, so classify_vector_mix is
    # O(1) on the cached path too
    try:
        program._vector_mix_cache = (trace.n, trace.mix)
    except AttributeError:
        pass


def fetch(program, config, machine_dig=None):
    """Look one compile up in the memory then disk tier, or ``None``.

    Disk entries that fail verification (torn write, truncation, bit
    rot, foreign bytes) are counted as errors, best-effort unlinked,
    and reported as misses — the caller recompiles and the next store
    heals the entry.
    """
    if not enabled():
        return None
    if len(program) < MIN_PERSIST_INSTRUCTIONS:
        return None
    key = trace_key(program, config, machine_dig)
    if memory_cap():
        trace = _memory.get(key)
        if trace is not None:
            _memory.move_to_end(key)
            _stats.memory_hits += 1
            _install_mix(program, trace)
            return trace
    path = entry_path(key)
    try:
        data = path.read_bytes()
    except OSError:
        _stats.misses += 1
        return None
    try:
        trace = deserialize_trace(data)
    except Exception:
        _stats.errors += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None
    _stats.disk_hits += 1
    _memory_insert(key, trace)
    _install_mix(program, trace)
    return trace


def put(program, config, trace, machine_dig=None):
    """Persist one freshly compiled trace into both tiers.

    Disk failures (read-only root, full disk, races on unlink) are
    counted and swallowed: the cache is an accelerator, never a
    correctness dependency.
    """
    if not enabled():
        return
    if trace.n < MIN_PERSIST_INSTRUCTIONS:
        return
    key = trace_key(program, config, machine_dig)
    _memory_insert(key, trace)
    path = entry_path(key)
    tmp = None
    try:
        data = serialize_trace(trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        tmp = None
        _stats.stores += 1
    except OSError:
        _stats.errors += 1
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# maintenance (repro-camp cache stats|prune)


def disk_stats(base=None):
    """On-disk inventory of the trace tier (same shape as the result
    cache's :meth:`~repro.experiments.cache.ResultCache.disk_stats`)."""
    now = time.time()
    count = 0
    total = 0
    oldest = newest = None
    for path in entry_paths(base):
        try:
            stat = path.stat()
        except OSError:
            continue
        count += 1
        total += stat.st_size
        age = now - stat.st_mtime
        oldest = age if oldest is None else max(oldest, age)
        newest = age if newest is None else min(newest, age)
    return {
        "root": str(cache_root(base)),
        "entries": count,
        "total_bytes": total,
        "oldest_age_s": oldest,
        "newest_age_s": newest,
    }


def prune(max_age_days=None, max_size_mb=None, base=None):
    """Evict persisted records by age and/or total size (oldest first).

    Same policy as the result cache's ``prune``; returns
    ``(removed_count, freed_bytes)``.
    """
    stamped = []
    for path in entry_paths(base):
        try:
            stat = path.stat()
        except OSError:
            continue
        stamped.append((stat.st_mtime, stat.st_size, path))
    stamped.sort()  # oldest first
    removed = 0
    freed = 0

    def evict(entry):
        nonlocal removed, freed
        _, size, path = entry
        try:
            path.unlink()
        except OSError:
            return
        removed += 1
        freed += size

    survivors = []
    if max_age_days is not None:
        cutoff = time.time() - max_age_days * 86400.0
        for entry in stamped:
            if entry[0] < cutoff:
                evict(entry)
            else:
                survivors.append(entry)
    else:
        survivors = stamped
    if max_size_mb is not None:
        budget = max_size_mb * 1024 * 1024
        total = sum(size for _, size, _ in survivors)
        for entry in survivors:
            if total <= budget:
                break
            evict(entry)
            total -= entry[1]
    return removed, freed
