"""Simulation statistics and stall taxonomy.

The paper reports (Figures 4 and 15) the functional-unit busy rate and
the proportion of stall cycles attributed to *Functional Unit*, *Read*
and *Write* causes; :class:`SimStats` carries exactly those, plus the
instruction/byte counters every experiment consumes.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import FUClass


@dataclass
class SimStats:
    """Counters produced by one pipeline simulation."""

    cycles: int = 0
    instructions: int = 0
    vector_instructions: int = 0
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    fu_busy_cycles: Dict[FUClass, int] = field(default_factory=Counter)
    stall_cycles_fu: int = 0
    stall_cycles_read: int = 0
    stall_cycles_write: int = 0
    issue_cycles: int = 0       # cycles in which >=1 instruction issued
    cache_miss_rates: Dict[str, float] = field(default_factory=dict)

    @property
    def stall_cycles(self):
        return self.stall_cycles_fu + self.stall_cycles_read + self.stall_cycles_write

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    def busy_rate(self, fu_class, n_units=1):
        """Fraction of cycles ``fu_class`` units were occupied."""
        if not self.cycles or not n_units:
            return 0.0
        return self.fu_busy_cycles.get(fu_class, 0) / (self.cycles * n_units)

    def arithmetic_busy_rate(self, config):
        """Busy rate of the vector-arithmetic units (paper's "FU busy rate").

        Weighted over the VALU/VMUL/MATRIX pools that exist in
        ``config``; this is the quantity Figures 4 and 15 plot.
        """
        busy = 0
        capacity = 0
        for fu in (FUClass.VALU, FUClass.VMUL, FUClass.MATRIX):
            units = config.units_of(fu)
            if units:
                busy += self.fu_busy_cycles.get(fu, 0)
                capacity += units * self.cycles
        return busy / capacity if capacity else 0.0

    def stall_proportions(self):
        """(fu, read, write) proportions of total stall cycles."""
        total = self.stall_cycles
        if not total:
            return 0.0, 0.0, 0.0
        return (
            self.stall_cycles_fu / total,
            self.stall_cycles_read / total,
            self.stall_cycles_write / total,
        )

    def merge_scaled(self, other, repeat=1):
        """Fold ``repeat`` copies of ``other`` into this stats object.

        Used by the GotoBLAS driver to compose whole-GEMM totals from a
        micro-kernel tile simulated once (block composition; validated
        against full simulation in the tests).
        """
        self.cycles += other.cycles * repeat
        self.instructions += other.instructions * repeat
        self.vector_instructions += other.vector_instructions * repeat
        self.loads += other.loads * repeat
        self.stores += other.stores * repeat
        self.bytes_loaded += other.bytes_loaded * repeat
        self.bytes_stored += other.bytes_stored * repeat
        for fu, busy in other.fu_busy_cycles.items():
            self.fu_busy_cycles[fu] = self.fu_busy_cycles.get(fu, 0) + busy * repeat
        self.stall_cycles_fu += other.stall_cycles_fu * repeat
        self.stall_cycles_read += other.stall_cycles_read * repeat
        self.stall_cycles_write += other.stall_cycles_write * repeat
        self.issue_cycles += other.issue_cycles * repeat
        self.cache_miss_rates.update(other.cache_miss_rates)
        return self
