"""repro — reproduction of the CAMP architecture (MICRO 2025).

CAMP (Cartesian Accumulative Matrix Pipeline) augments vector
architectures with an outer-product matrix-multiply instruction backed
by a hybrid (divide-and-conquer) integer multiplier, accelerating
quantized (int8/int4) GEMM.

The package is organised as:

- :mod:`repro.core` — the paper's contribution: hybrid multiplier,
  ``camp`` instruction semantics, lane/accumulator models.
- :mod:`repro.isa` — vector instruction set, registers, programs.
- :mod:`repro.machines` — declarative machine descriptions: frozen
  specs, a process-wide registry, TOML/JSON machine files.
- :mod:`repro.simulator` — cycle-approximate pipeline simulator.
- :mod:`repro.memory` — cache hierarchy with stride prefetcher.
- :mod:`repro.gemm` — GotoBLAS-style blocked GEMM and micro-kernels.
- :mod:`repro.quant` — quantization schemes and accuracy studies.
- :mod:`repro.workloads` — CNN/LLM layer shapes from the paper.
- :mod:`repro.physical` — area / power / energy models.
- :mod:`repro.experiments` — one module per paper table / figure.
"""

from repro.core.camp import camp_reference, CampMode
from repro.core.hybrid_multiplier import HybridMultiplier
from repro.gemm.api import gemm, GemmResult
from repro.machines import MachineSpec, get_spec, machine_names
from repro.simulator.config import MachineConfig, a64fx_config, sargantana_config

__version__ = "1.0.0"

__all__ = [
    "camp_reference",
    "CampMode",
    "HybridMultiplier",
    "gemm",
    "GemmResult",
    "MachineConfig",
    "MachineSpec",
    "a64fx_config",
    "get_spec",
    "machine_names",
    "sargantana_config",
    "__version__",
]
