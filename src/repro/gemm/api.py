"""Public GEMM API.

``gemm(a, b, method=...)`` computes a blocked GEMM with a chosen
micro-kernel and returns both the numeric result and the performance
analysis; ``analyze(m, n, k, method=...)`` is the shape-only timing
path the experiments use.
"""

from dataclasses import dataclass

import numpy as np

import repro.gemm.kernels  # noqa: F401  (populates the registry)
from repro.gemm.goto import GemmExecution, GotoBlasDriver
from repro.gemm.microkernel import get_kernel
from repro.isa.instructions import FUClass
from repro.machines import MachineSpec, MachineSpecError, get_spec
from repro.serving.requests import BACKENDS
from repro.simulator.config import MachineConfig

#: kernels that need the MATRIX functional unit
_MATRIX_KERNELS = {"camp8", "camp4", "camp8-requant", "mmla"}


def resolve_machine(machine, method):
    """Turn a machine name/spec/config into a config with the right FUs.

    Names resolve through the machine registry
    (:mod:`repro.machines`), so user machines loaded via
    ``--machine-file`` / ``$REPRO_MACHINE_PATH`` work everywhere a
    preset does.
    """
    needs_matrix = method in _MATRIX_KERNELS
    if isinstance(machine, MachineConfig):
        if needs_matrix and not machine.units_of(FUClass.MATRIX):
            # MachineSpecError subclasses ValueError, so callers
            # catching the old type keep working; the CLI and daemon
            # map it to exit code 2 / HTTP 400 with the machine named
            raise MachineSpecError(
                "machine %r cannot run kernel %r: the kernel needs a "
                "matrix unit but the machine has none"
                % (machine.name, method)
            )
        return machine
    if machine is None:
        machine = "a64fx"
    spec = machine if isinstance(machine, MachineSpec) else get_spec(machine)
    return spec.config(camp_enabled=needs_matrix)


def make_driver(method, machine=None, blocking=None):
    """Build a :class:`GotoBlasDriver` for a method/machine pair."""
    config = resolve_machine(machine, method)
    kernel = get_kernel(method, vector_length_bits=config.vector_length_bits)
    return GotoBlasDriver(kernel, config, blocking=blocking)


@dataclass
class GemmResult:
    """Numeric result + performance analysis of one ``gemm`` call."""

    c: np.ndarray
    execution: GemmExecution

    @property
    def cycles(self):
        return self.execution.cycles

    @property
    def gops(self):
        return self.execution.gops


def gemm(a, b, method="camp8", machine=None, blocking=None):
    """Blocked matrix multiplication ``a @ b`` with full analysis.

    Parameters
    ----------
    a, b:
        Integer (or float, for fp32 methods) matrices of shapes (m, k)
        and (k, n). Values must fit the method's operand type (int8 in
        [-128, 127], int4 in [-8, 7]).
    method:
        Micro-kernel name — one of :func:`repro.gemm.kernel_names`.
    machine:
        Any registered machine name (``"a64fx"`` by default — see
        :func:`repro.machines.machine_names`), a
        :class:`~repro.machines.MachineSpec`, or a
        :class:`~repro.simulator.config.MachineConfig`.

    Returns
    -------
    GemmResult
        ``.c`` is the numeric product in the kernel's accumulator type
        (note ``handv-int8`` wraps by design); ``.execution`` carries
        cycles, instruction counts and derived metrics.
    """
    driver = make_driver(method, machine, blocking)
    _check_operand_range(a, driver.kernel)
    _check_operand_range(b, driver.kernel)
    c = driver.compute(a, b)
    execution = driver.analyze(a.shape[0], b.shape[1], a.shape[1])
    return GemmResult(c=c, execution=execution)


# BACKENDS ("simulate" | "analytic") is defined once in
# repro.serving.requests — the request layer is the canonical source of
# request vocabulary — and re-exported here for API compatibility.


def analyze(m, n, k, method="camp8", machine=None, blocking=None,
            backend="simulate"):
    """Shape-only performance analysis (no numeric computation).

    ``backend="simulate"`` runs the block-composed pipeline simulation;
    ``backend="analytic"`` evaluates the calibrated closed-form model
    instead (calibrating against the simulator on first use — see
    :mod:`repro.analytic`), which is orders of magnitude faster per
    shape once the coefficients exist. The analytic backend fits
    coefficients for the machine's default blocking, so an explicit
    ``blocking`` is rejected there.
    """
    if backend not in BACKENDS:
        raise ValueError(
            "unknown backend %r; available: %s" % (backend, ", ".join(BACKENDS))
        )
    if backend == "analytic":
        if blocking is not None:
            raise ValueError(
                "backend='analytic' predicts the machine's default "
                "blocking; custom blocking needs backend='simulate'"
            )
        from repro.analytic import predict

        return predict(m, n, k, method=method, machine=machine)
    driver = make_driver(method, machine, blocking)
    return driver.analyze(m, n, k)


def _check_operand_range(matrix, kernel):
    dtype = kernel.dtype
    if not dtype.is_integer:
        return
    matrix = np.asarray(matrix)
    if not np.issubdtype(matrix.dtype, np.integer):
        raise TypeError(
            "kernel %r expects integer operands, got %s" % (kernel.name, matrix.dtype)
        )
    if matrix.size and (
        matrix.min() < dtype.min_value or matrix.max() > dtype.max_value
    ):
        raise ValueError(
            "operand values outside the %s range [%d, %d]"
            % (dtype.value, dtype.min_value, dtype.max_value)
        )
