"""GotoBLAS-style blocked GEMM with pluggable micro-kernels.

The paper integrates CAMP into the ulmBLAS (GotoBLAS-structured) GEMM;
this package implements that structure — five loops around a
micro-kernel with A/B panel packing — plus the full set of micro-kernels
the evaluation compares (Section 5.3):

- ``camp8`` / ``camp4`` — this work,
- ``handv-int32`` / ``handv-int8`` — hand-vectorized ulmBLAS,
- ``gemmlowp`` — Google's low-precision GEMM strategy,
- ``openblas-fp32`` — optimized SGEMM baseline,
- ``blis-int32`` — the edge RISC-V baseline,
- ``mmla`` — ARMv8.6 matrix multiply-accumulate.
"""

from repro.gemm.blocking import BlockingParams, default_blocking
from repro.gemm.microkernel import MicroKernel, get_kernel, kernel_names
from repro.gemm.goto import GotoBlasDriver, GemmExecution
from repro.gemm.api import GemmResult, analyze, gemm

__all__ = [
    "BlockingParams",
    "default_blocking",
    "MicroKernel",
    "get_kernel",
    "kernel_names",
    "GotoBlasDriver",
    "GemmExecution",
    "GemmResult",
    "analyze",
    "gemm",
]
