"""Micro-kernel framework and registry.

A micro-kernel computes one ``m_r x n_r`` tile of C over a depth-``kc``
slice of packed panels. Every kernel supplies both:

- ``emit_call`` — the instruction trace of one invocation (what the
  pipeline simulator times and the functional executor can run), and
- ``compute_tile`` — the numeric semantics, *including* any deliberate
  deviation from exact arithmetic (handv-int8's wrapping accumulator).

The registry maps the paper's method names to kernel factories.
"""

import abc

import numpy as np

from repro.isa.builder import ProgramBuilder
from repro.isa.dtypes import DType

# Default base addresses used by emitted traces: packed A and B panels
# and the C tile live in disjoint regions so cache behaviour is sane.
A_PANEL_BASE = 0x100000
B_PANEL_BASE = 0x200000
C_TILE_BASE = 0x300000


class MicroKernel(abc.ABC):
    """One GEMM micro-kernel: tile shape, trace emission, semantics.

    Kernels are vector-length agnostic: tile geometry (``n_r``, CAMP's
    ``k_step``, loads per iteration) derives from the register width at
    construction via ``_configure``.
    """

    #: method name (registry key)
    name = "abstract"
    #: operand element type
    dtype = DType.INT8
    #: accumulator element type
    acc_dtype = DType.INT32
    #: tile rows / columns (defaults; _configure may override)
    m_r = 4
    n_r = 4
    #: k elements consumed per inner-loop iteration
    k_step = 1
    #: k iterations unrolled per loop back-edge
    unroll = 4

    def __init__(self, vector_length_bits=512):
        if vector_length_bits % 64:
            raise ValueError("vector length must be a multiple of 64 bits")
        self.vector_length_bits = vector_length_bits
        self._configure()

    def _configure(self):
        """Hook: derive width-dependent geometry from the vector length."""

    @property
    def vector_bytes(self):
        return self.vector_length_bits // 8

    def operand_bytes(self, elements):
        """Bytes occupied by ``elements`` operand elements in memory."""
        if self.dtype is DType.INT4:
            return elements // 2
        return elements * (self.dtype.bits // 8)

    def macs_per_call(self, kc):
        return self.m_r * self.n_r * kc

    # -- trace -----------------------------------------------------------

    @abc.abstractmethod
    def emit_call(self, builder, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                  c_addr=C_TILE_BASE, first_k_block=True):
        """Emit the dynamic trace of one micro-kernel invocation.

        ``first_k_block`` selects between overwriting C (first kc slice
        of the 4th GotoBLAS loop) and read-modify-write accumulation.
        """

    def build_call(self, kc, **kwargs):
        """Emit one call into a fresh builder (memoized).

        ``emit_call`` is a pure function of the kernel's identity
        (``name`` + vector length fix the geometry via ``_configure``)
        and the call arguments, and built programs are immutable once
        consumers see them, so the program is shared process-wide.
        Sharing one object also shares its cached content digest and
        compiled trace, which repeated sweep points would otherwise
        recompute from scratch.
        """
        key = (self.name, self.vector_length_bits, kc,
               tuple(sorted(kwargs.items())))
        program = _BUILD_MEMO.get(key)
        if program is None:
            builder = ProgramBuilder(
                name="%s(kc=%d)" % (self.name, kc),
                vector_length_bits=self.vector_length_bits,
            )
            self.emit_call(builder, kc, **kwargs)
            program = builder.build()
            _BUILD_MEMO[key] = program
        return program

    def validate_kc(self, kc):
        if kc % self.k_step:
            raise ValueError(
                "%s requires kc to be a multiple of %d, got %d"
                % (self.name, self.k_step, kc)
            )

    # -- semantics ------------------------------------------------------------

    @abc.abstractmethod
    def compute_tile(self, a_panel, b_panel, acc=None):
        """Numeric result of one call.

        ``a_panel`` is m_r x kc, ``b_panel`` kc x n_r; ``acc`` an
        existing accumulator tile or ``None`` for a zero start.
        Returns the new tile in this kernel's accumulator dtype.
        """

    # -- bookkeeping -------------------------------------------------------------

    def instruction_counts(self, kc):
        """Opcode histogram of one emitted call (exact, by construction)."""
        return self.build_call(kc).opcode_histogram()

    def warm_addresses(self, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                       c_addr=C_TILE_BASE):
        """Cache lines a steady-state call finds resident.

        Packed panels live in L1/L2 by construction of the GotoBLAS
        blocking; the C tile was written by the previous k-block pass
        and is still cached.
        """
        a_bytes = self.operand_bytes(self.m_r * kc)
        b_bytes = self.operand_bytes(self.n_r * kc)
        c_bytes = self.m_r * self.n_r * (self.acc_dtype.bits // 8)
        addresses = []
        for base, span in ((a_addr, a_bytes), (b_addr, b_bytes), (c_addr, c_bytes)):
            addresses.extend(range(base, base + int(span), 64))
        return addresses


#: built call programs shared across kernel/driver instances, keyed by
#: (kernel name, vector length, kc, emit kwargs)
_BUILD_MEMO = {}

_REGISTRY = {}


def register_kernel(factory):
    """Class decorator adding a kernel to the registry by its ``name``."""
    _REGISTRY[factory.name] = factory
    return factory


def get_kernel(name, **kwargs):
    """Instantiate a registered kernel by method name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown kernel %r; available: %s" % (name, ", ".join(sorted(_REGISTRY)))
        ) from None
    return factory(**kwargs)


def kernel_names():
    return sorted(_REGISTRY)


def exact_tile(a_panel, b_panel, acc, out_dtype=np.int32):
    """Exact integer tile product used by several kernels."""
    a64 = np.asarray(a_panel, dtype=np.int64)
    b64 = np.asarray(b_panel, dtype=np.int64)
    tile = a64 @ b64
    if acc is not None:
        tile = tile + np.asarray(acc, dtype=np.int64)
    return tile.astype(out_dtype)
