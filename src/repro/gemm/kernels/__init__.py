"""Micro-kernel implementations; importing this module populates the registry."""

from repro.gemm.kernels.camp_kernel import Camp4Kernel, Camp8Kernel
from repro.gemm.kernels.camp_requant import Camp8RequantKernel
from repro.gemm.kernels.handv import HandvInt8Kernel, HandvInt32Kernel
from repro.gemm.kernels.blis_int32 import BlisInt32Kernel
from repro.gemm.kernels.gemmlowp_like import GemmlowpKernel
from repro.gemm.kernels.openblas_fp32 import OpenBlasFp32Kernel
from repro.gemm.kernels.mmla import MmlaKernel

__all__ = [
    "Camp8Kernel",
    "Camp8RequantKernel",
    "Camp4Kernel",
    "HandvInt32Kernel",
    "HandvInt8Kernel",
    "BlisInt32Kernel",
    "GemmlowpKernel",
    "OpenBlasFp32Kernel",
    "MmlaKernel",
]
