"""Hand-vectorized ulmBLAS micro-kernels (Section 5.3, methods 1-2).

``handv-int32`` is the in-house vectorized ulmBLAS using 32-bit integer
SVE: per k it loads one B row, broadcasts each of the 4 packed A
elements and issues a 16-wide int32 multiply-accumulate per tile row.

``handv-int8`` is the quantized variant the paper uses to isolate the
data-type-conversion speedup: 8-bit operands with 8-bit accumulators
and *no* widening/reinterpret instructions. Overflow is deliberately
ignored, exactly as the paper describes ("may lead to incorrect
results") — ``compute_tile`` faithfully wraps modulo 256. SVE's int8
multiply constraints keep it at half-register width (32 elements).
"""

import numpy as np

from repro.gemm.microkernel import (
    A_PANEL_BASE,
    B_PANEL_BASE,
    C_TILE_BASE,
    MicroKernel,
    exact_tile,
    register_kernel,
)
from repro.isa.dtypes import DType


class _HandvBase(MicroKernel):
    m_r = 4
    unroll = 4
    #: A-panel elements carried per vector load
    a_elems_per_load = 16

    def _row_bytes(self):
        return self.n_r * (self.dtype.bits // 8)

    def emit_call(self, builder, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                  c_addr=C_TILE_BASE, first_k_block=True):
        self.validate_kc(kc)
        b_reg = builder.vregs.alloc()
        a_vec = builder.vregs.alloc()
        tmp = builder.vregs.alloc()
        accs = [builder.vregs.alloc() for _ in range(self.m_r)]
        counter = builder.xregs.alloc()
        builder.salu(counter, [], imm=kc)  # initialize the loop counter
        for acc in accs:
            builder.vzero(acc, self.acc_dtype)
        row_bytes = self._row_bytes()
        a_elem_bytes = self.dtype.bits // 8
        ks_per_a_load = self.a_elems_per_load // self.m_r
        for k in range(kc):
            if k % ks_per_a_load == 0:
                builder.vload(
                    a_vec,
                    a_addr
                    + (k // ks_per_a_load) * self.a_elems_per_load * a_elem_bytes,
                    self.dtype,
                    size=self.a_elems_per_load * a_elem_bytes,
                )
            builder.vload(b_reg, b_addr + k * row_bytes, self.dtype, size=row_bytes)
            for i in range(self.m_r):
                lane = (k % ks_per_a_load) * self.m_r + i
                builder.vdup(tmp, a_vec, self.dtype, lane=lane, elements=self.n_r)
                builder.vmla(accs[i], tmp, b_reg, self.acc_dtype)
            if (k + 1) % self.unroll == 0 or k + 1 == kc:
                builder.salu(counter, [counter])
                builder.loop_overhead(counter)
        acc_row_bytes = self.n_r * (self.acc_dtype.bits // 8)
        for i, acc in enumerate(accs):
            row_addr = c_addr + i * acc_row_bytes
            if first_k_block:
                builder.vstore(acc, row_addr, self.acc_dtype, size=acc_row_bytes)
            else:
                builder.vload(tmp, row_addr, self.acc_dtype, size=acc_row_bytes)
                builder.vadd(acc, acc, tmp, self.acc_dtype)
                builder.vstore(acc, row_addr, self.acc_dtype, size=acc_row_bytes)
        for reg in [b_reg, a_vec, tmp] + accs:
            builder.vregs.free(reg)
        builder.xregs.free(counter)


@register_kernel
class HandvInt32Kernel(_HandvBase):
    """Vectorized ulmBLAS with 32-bit integer SVE (exact arithmetic)."""

    name = "handv-int32"
    dtype = DType.INT32
    acc_dtype = DType.INT32
    k_step = 1

    def _configure(self):
        self.n_r = self.vector_length_bits // 32
        self.a_elems_per_load = self.vector_length_bits // 32

    def compute_tile(self, a_panel, b_panel, acc=None):
        return exact_tile(a_panel, b_panel, acc, out_dtype=np.int32)


@register_kernel
class HandvInt8Kernel(_HandvBase):
    """Quantized 8-bit variant with wrapping 8-bit accumulators.

    The missing widening steps make it fast but *wrong* for large
    reductions — the accumulator wraps modulo 256, which is exactly the
    deviation the paper accepts to isolate the data-type speedup.
    """

    name = "handv-int8"
    dtype = DType.INT8
    acc_dtype = DType.INT8
    k_step = 1

    def _configure(self):
        # int8 processing at half register width (SVE multiply returns
        # only 8 of the 16 product bits; wider forms need the widening
        # ops this kernel deliberately omits)
        self.n_r = self.vector_length_bits // 16
        self.a_elems_per_load = self.vector_length_bits // 8

    def compute_tile(self, a_panel, b_panel, acc=None):
        # int8 truncation at every multiply and accumulate == arithmetic
        # modulo 256 throughout, so the exact sum wrapped once is identical.
        return exact_tile(a_panel, b_panel, acc, out_dtype=np.int8)
