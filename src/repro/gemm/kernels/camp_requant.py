"""Extension: CAMP micro-kernel with fused int8 requantization.

Production QNN pipelines (gemmlowp, QNNPACK) requantize the int32 GEMM
result back to int8 on the way out. The paper leaves the CAMP output
as int32 tiles; this extension kernel fuses the requantize step into
the C write-out — a narrowing plus scale stage after ``camp_store`` —
quartering the C store traffic. The requantization itself uses the
standard fixed-point multiplier + right-shift formulation, applied
numerically in :meth:`requantize` and architecturally as
``vnarrow``/``vmul`` tail instructions.
"""

import numpy as np

from repro.gemm.kernels.camp_kernel import _CampKernelBase
from repro.gemm.microkernel import (
    A_PANEL_BASE,
    B_PANEL_BASE,
    C_TILE_BASE,
    exact_tile,
    register_kernel,
)
from repro.isa.dtypes import DType


def requantize_int32_to_int8(tile, multiplier, shift):
    """Fixed-point requantization: ``round(tile * multiplier / 2^shift)``.

    ``multiplier`` is a positive int32 fixed-point factor; the result
    saturates to int8 — the arithmetic gemmlowp documents.
    """
    if multiplier <= 0:
        raise ValueError("multiplier must be positive")
    if not 0 <= shift < 63:
        raise ValueError("shift out of range")
    scaled = np.asarray(tile, dtype=np.int64) * int(multiplier)
    rounding = 1 << shift >> 1
    shifted = (scaled + np.where(scaled >= 0, rounding, -rounding)) >> shift
    return np.clip(shifted, -128, 127).astype(np.int8)


@register_kernel
class Camp8RequantKernel(_CampKernelBase):
    """camp8 with fused int32 -> int8 output requantization.

    The k-loop is identical to ``camp8``; the tail requantizes the 4x4
    tile and stores 16 int8 bytes instead of 64 int32 bytes.
    Requantizing partial sums is numerically wrong, so this kernel
    requires the whole reduction in one k-block (K <= kc); both the
    trace emitter and the numeric path enforce that.
    """

    name = "camp8-requant"
    dtype = DType.INT8
    element_bits = 8

    #: fixed-point output scale (tests exercise round-trips against the
    #: float formulation); kernels in a real stack would set these per
    #: layer from the quantization parameters
    multiplier = 1 << 14
    shift = 16

    def emit_call(self, builder, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                  c_addr=C_TILE_BASE, first_k_block=True):
        if not first_k_block:
            raise ValueError(
                "%s fuses requantization into the write-out and cannot "
                "accumulate across k-blocks; use K <= kc" % self.name
            )
        self.validate_kc(kc)
        a_reg = builder.vregs.alloc()
        b_reg = builder.vregs.alloc()
        acc = builder.aregs.alloc()
        counter = builder.xregs.alloc()
        builder.salu(counter, [], imm=kc)
        builder.vzero(acc)
        step_bytes = self.vector_bytes
        iterations = kc // self.k_step
        for it in range(iterations):
            builder.vload(a_reg, a_addr + it * step_bytes, self.dtype, size=step_bytes)
            builder.vload(b_reg, b_addr + it * step_bytes, self.dtype, size=step_bytes)
            builder.camp(acc, a_reg, b_reg, self.dtype)
            if (it + 1) % self.unroll == 0 or it + 1 == iterations:
                builder.salu(counter, [counter])
                builder.salu(counter, [counter])
                builder.loop_overhead(counter)
        c_reg = builder.vregs.alloc()
        scale_reg = builder.vregs.alloc()
        tile_bytes = 64
        chunk_bytes = min(tile_bytes, self.vector_bytes)
        for index in range(tile_bytes // chunk_bytes):
            builder.camp_store(c_reg, acc, chunk=index)
            # fused requantize: fixed-point scale then narrow to int8
            mul = builder.vmul(scale_reg, c_reg, c_reg, DType.INT32)
            mul.meta["requant"] = (self.multiplier, self.shift)
            builder.vnarrow(scale_reg, scale_reg, DType.INT32, DType.INT8)
            builder.vstore(scale_reg, c_addr + index * chunk_bytes // 4,
                           DType.INT8, size=chunk_bytes // 4)
        for reg in (a_reg, b_reg, c_reg, scale_reg):
            builder.vregs.free(reg)
        builder.aregs.free(acc)
        builder.xregs.free(counter)

    def compute_tile(self, a_panel, b_panel, acc=None):
        """Requantized int8 tile (single k-block semantics)."""
        if acc is not None:
            raise ValueError(
                "%s cannot accumulate across k-blocks" % self.name
            )
        int32_tile = exact_tile(a_panel, b_panel, None, out_dtype=np.int32)
        return requantize_int32_to_int8(int32_tile, self.multiplier, self.shift)

    def requantize(self, tile):
        return requantize_int32_to_int8(tile, self.multiplier, self.shift)
