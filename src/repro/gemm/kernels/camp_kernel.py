"""CAMP micro-kernels (Figure 9).

The two innermost GotoBLAS loops disappear: each iteration loads one
4x16 (int8) or 4x32 (int4) packed A slab and the matching B slab —
64 bytes each, one full vector register — and issues a single ``camp``.
The 4x4 int32 tile accumulates in the auxiliary register across the
whole kc loop and is written out once.
"""

import numpy as np

from repro.gemm.microkernel import (
    A_PANEL_BASE,
    B_PANEL_BASE,
    C_TILE_BASE,
    MicroKernel,
    exact_tile,
    register_kernel,
)
from repro.isa.dtypes import DType


class _CampKernelBase(MicroKernel):
    acc_dtype = DType.INT32
    m_r = 4
    n_r = 4
    unroll = 4
    element_bits = 8

    def _configure(self):
        # a 4 x k_step panel fills one register: vector-length agnostic
        self.k_step = self.vector_length_bits // (4 * self.element_bits)
        # the edge RISC-V integration inlines un-unrolled assembly
        # (Section 4.3), so narrow-SIMD builds pay loop overhead every
        # iteration; the SVE intrinsics build unrolls by 4
        self.unroll = 4 if self.vector_length_bits >= 256 else 1

    def emit_call(self, builder, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                  c_addr=C_TILE_BASE, first_k_block=True):
        self.validate_kc(kc)
        a_reg = builder.vregs.alloc()
        b_reg = builder.vregs.alloc()
        acc = builder.aregs.alloc()
        counter = builder.xregs.alloc()
        builder.salu(counter, [], imm=kc)  # initialize the loop counter
        builder.vzero(acc)
        iterations = kc // self.k_step
        step_bytes = self.vector_bytes  # one full register per operand per step
        for it in range(iterations):
            builder.vload(a_reg, a_addr + it * step_bytes, self.dtype, size=step_bytes)
            builder.vload(b_reg, b_addr + it * step_bytes, self.dtype, size=step_bytes)
            builder.camp(acc, a_reg, b_reg, self.dtype)
            if (it + 1) % self.unroll == 0 or it + 1 == iterations:
                # pointer bumps for A and B plus the loop back-edge
                builder.salu(counter, [counter])
                builder.salu(counter, [counter])
                builder.loop_overhead(counter)
        # the 4x4 int32 tile occupies 64 bytes: one register-sized move
        # and store per chunk (one at VL=512, four at VL=128)
        c_reg = builder.vregs.alloc()
        tile_bytes = 64
        chunk_bytes = min(tile_bytes, self.vector_bytes)
        for index, off in enumerate(range(0, tile_bytes, chunk_bytes)):
            builder.camp_store(c_reg, acc, chunk=index)
            if first_k_block:
                builder.vstore(c_reg, c_addr + off, DType.INT32, size=chunk_bytes)
            else:
                old = builder.vregs.alloc()
                builder.vload(old, c_addr + off, DType.INT32, size=chunk_bytes)
                builder.vadd(c_reg, c_reg, old, DType.INT32)
                builder.vstore(c_reg, c_addr + off, DType.INT32, size=chunk_bytes)
                builder.vregs.free(old)
        for reg in (a_reg, b_reg, c_reg):
            builder.vregs.free(reg)
        builder.aregs.free(acc)
        builder.xregs.free(counter)

    def compute_tile(self, a_panel, b_panel, acc=None):
        a_panel = np.asarray(a_panel)
        b_panel = np.asarray(b_panel)
        if a_panel.shape[1] % self.k_step:
            raise ValueError(
                "%s needs K padded to a multiple of %d" % (self.name, self.k_step)
            )
        return exact_tile(a_panel, b_panel, acc, out_dtype=np.int32)


@register_kernel
class Camp8Kernel(_CampKernelBase):
    """8-bit ``camp``: 4x16 @ 16x4 per instruction at VL=512 (256 MACs)."""

    name = "camp8"
    dtype = DType.INT8
    element_bits = 8


@register_kernel
class Camp4Kernel(_CampKernelBase):
    """4-bit ``camp``: 4x32 @ 32x4 per instruction at VL=512 (512 MACs).

    Operands stay nibble-packed in memory; no pack/unpack instructions
    are emitted — this is the linear 8-bit/4-bit relationship the paper
    highlights for the RISC-V results (Figure 12).
    """

    name = "camp4"
    dtype = DType.INT4
    element_bits = 4
