"""ARMv8.6 MMLA-style micro-kernel (Section 7.2 / Figure 18).

``smmla`` multiplies a 2x8 row-major int8 tile by another 2x8 row-major
tile (transposed) into a 2x2 int32 tile, independently per 128-bit
quadword. Building an 8x8 register tile from it needs every (row-pair,
column-pair) combination — 16 MMLAs per 8-deep k step — plus zip /
reinterpret traffic to replicate the quadwords, and a layout fix-up at
the C write-out because the 2x2-per-quadword output conflicts with
GotoBLAS's column-major expectations (the mismatch the paper calls
out). Those overheads, and the single matrix unit the MMLAs serialize
on, are why MMLA lands well below CAMP in Figure 18.
"""

import numpy as np

from repro.gemm.microkernel import (
    A_PANEL_BASE,
    B_PANEL_BASE,
    C_TILE_BASE,
    MicroKernel,
    exact_tile,
    register_kernel,
)
from repro.isa.dtypes import DType


@register_kernel
class MmlaKernel(MicroKernel):
    """8x8 register-tile kernel built from 2x8x2 ``smmla`` ops."""

    name = "mmla"
    dtype = DType.INT8
    acc_dtype = DType.INT32
    m_r = 8
    n_r = 8
    k_step = 8
    unroll = 2

    def _configure(self):
        if self.vector_length_bits < 512:
            raise ValueError(
                "the mmla kernel is modelled for 512-bit registers "
                "(the Yitian-class comparison platform of Section 7.2)"
            )

    def emit_call(self, builder, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                  c_addr=C_TILE_BASE, first_k_block=True):
        self.validate_kc(kc)
        a_reg = builder.vregs.alloc()
        b_reg = builder.vregs.alloc()
        a_rep = builder.vregs.alloc()
        b_rep = builder.vregs.alloc()
        # 8x8 int32 C tile = 16 quadword 2x2 tiles = 4 vector registers
        accs = [builder.vregs.alloc() for _ in range(4)]
        counter = builder.xregs.alloc()
        builder.salu(counter, [], imm=kc)  # initialize the loop counter
        for acc in accs:
            builder.vzero(acc, DType.INT32)
        iterations = kc // self.k_step
        for it in range(iterations):
            builder.vload(a_reg, a_addr + it * 64, DType.INT8, size=64)
            builder.vload(b_reg, b_addr + it * 64, DType.INT8, size=64)
            # replicate row-pair / column-pair quadwords so each of the
            # 16 (row-pair, col-pair) MMLAs sees aligned segments
            for _ in range(3):
                builder.vreinterpret(a_rep, a_reg, DType.INT8)
                builder.vreinterpret(b_rep, b_reg, DType.INT8)
            for acc in accs:
                for _ in range(4):  # 4 quadword MMLAs per accumulator register
                    builder.mmla(acc, a_rep, b_rep, DType.INT8)
            if (it + 1) % self.unroll == 0 or it + 1 == iterations:
                builder.salu(counter, [counter])
                builder.salu(counter, [counter])
                builder.loop_overhead(counter)
        # C write-out: un-interleave 2x2 quadword tiles into row-major
        # rows (the GotoBLAS layout conflict), then store 8 rows
        tmp = builder.vregs.alloc()
        for i in range(self.m_r):
            row_addr = c_addr + i * self.n_r * 4
            builder.vreinterpret(tmp, accs[i // 2], DType.INT32)
            if not first_k_block:
                old = builder.vregs.alloc()
                builder.vload(old, row_addr, DType.INT32, size=self.n_r * 4)
                builder.vadd(tmp, tmp, old, DType.INT32)
                builder.vregs.free(old)
            builder.vstore(tmp, row_addr, DType.INT32, size=self.n_r * 4)
        for reg in [a_reg, b_reg, a_rep, b_rep, tmp] + accs:
            builder.vregs.free(reg)
        builder.xregs.free(counter)

    def compute_tile(self, a_panel, b_panel, acc=None):
        return exact_tile(a_panel, b_panel, acc, out_dtype=np.int32)
