"""OpenBLAS-SGEMM-style FP32 micro-kernel — the A64FX baseline.

OpenBLAS's SVE SGEMM uses a tall register tile (8x16 here) with one
broadcast + one FMLA per tile row per k. This is the normalization
baseline for Table 1 and Figures 13/14/18.
"""

import numpy as np

from repro.gemm.microkernel import (
    A_PANEL_BASE,
    B_PANEL_BASE,
    C_TILE_BASE,
    MicroKernel,
    register_kernel,
)
from repro.isa.dtypes import DType


@register_kernel
class OpenBlasFp32Kernel(MicroKernel):
    """FP32 SGEMM micro-kernel with an 8x16 register tile."""

    name = "openblas-fp32"
    dtype = DType.FP32
    acc_dtype = DType.FP32
    k_step = 1
    unroll = 4

    def _configure(self):
        if self.vector_length_bits >= 256:
            self.n_r = self.vector_length_bits // 32
            self.m_r = 8       # tall register tile on wide machines
            self.unroll = 4
        else:
            # edge SoC: the FP datapath is 64 bits wide (two fp32
            # lanes) and the build is plain compiled C, like BLIS
            self.n_r = max(2, self.vector_length_bits // 64)
            self.m_r = 4
            self.unroll = 1
        self.a_elems_per_load = max(self.n_r, self.m_r)

    def emit_call(self, builder, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                  c_addr=C_TILE_BASE, first_k_block=True):
        self.validate_kc(kc)
        b_reg = builder.vregs.alloc()
        a_vec = builder.vregs.alloc()
        tmp = builder.vregs.alloc()
        accs = [builder.vregs.alloc() for _ in range(self.m_r)]
        counter = builder.xregs.alloc()
        builder.salu(counter, [], imm=kc)  # initialize the loop counter
        for acc in accs:
            builder.vzero(acc, DType.FP32)
        row_bytes = self.n_r * 4
        ks_per_a_load = self.a_elems_per_load // self.m_r
        for k in range(kc):
            if k % ks_per_a_load == 0:
                builder.vload(
                    a_vec,
                    a_addr + (k // ks_per_a_load) * self.a_elems_per_load * 4,
                    DType.FP32,
                    size=self.a_elems_per_load * 4,
                )
            builder.vload(b_reg, b_addr + k * row_bytes, DType.FP32, size=row_bytes)
            for i in range(self.m_r):
                lane = (k % ks_per_a_load) * self.m_r + i
                builder.vdup(tmp, a_vec, DType.FP32, lane=lane, elements=self.n_r)
                builder.fmla(accs[i], tmp, b_reg)
            if (k + 1) % self.unroll == 0 or k + 1 == kc:
                builder.salu(counter, [counter])
                builder.loop_overhead(counter)
        for i, acc in enumerate(accs):
            row_addr = c_addr + i * row_bytes
            if first_k_block:
                builder.vstore(acc, row_addr, DType.FP32, size=row_bytes)
            else:
                builder.vload(tmp, row_addr, DType.FP32, size=row_bytes)
                builder.vadd(acc, acc, tmp, DType.FP32)
                builder.vstore(acc, row_addr, DType.FP32, size=row_bytes)
        for reg in [b_reg, a_vec, tmp] + accs:
            builder.vregs.free(reg)
        builder.xregs.free(counter)

    def compute_tile(self, a_panel, b_panel, acc=None):
        tile = np.asarray(a_panel, dtype=np.float32) @ np.asarray(
            b_panel, dtype=np.float32
        )
        if acc is not None:
            tile = tile + np.asarray(acc, dtype=np.float32)
        return tile.astype(np.float32)
