"""gemmlowp-style micro-kernel (Section 5.3, method 4).

Google's gemmlowp computes int8 GEMM *correctly*: operands widen to
int16, products accumulate into int32, and the tile requantizes back
to int8 on the way out. That correctness costs instructions — the
widening, the extra multiply-accumulate per half, and the requantize
tail — which is exactly the overhead CAMP's in-datapath widening
removes.

Per k: one 32-element B-row load, one widen, then per tile row a
broadcast and two widening MLAs (16 int32 accumulators each).
"""

import numpy as np

from repro.gemm.microkernel import (
    A_PANEL_BASE,
    B_PANEL_BASE,
    C_TILE_BASE,
    MicroKernel,
    exact_tile,
    register_kernel,
)
from repro.isa.dtypes import DType


@register_kernel
class GemmlowpKernel(MicroKernel):
    """Low-precision GEMM with exact int32 accumulation."""

    name = "gemmlowp"
    dtype = DType.INT8
    acc_dtype = DType.INT32
    m_r = 4
    k_step = 1
    unroll = 4

    def _configure(self):
        self.n_r = self.vector_length_bits // 16
        self.a_elems_per_load = self.vector_length_bits // 8

    def emit_call(self, builder, kc, a_addr=A_PANEL_BASE, b_addr=B_PANEL_BASE,
                  c_addr=C_TILE_BASE, first_k_block=True):
        self.validate_kc(kc)
        b_raw = builder.vregs.alloc()
        b_wide = builder.vregs.alloc()
        a_vec = builder.vregs.alloc()
        tmp = builder.vregs.alloc()
        # 32 int32 accumulators per tile row = 2 vector registers per row
        accs = [
            [builder.vregs.alloc() for _ in range(2)] for _ in range(self.m_r)
        ]
        counter = builder.xregs.alloc()
        builder.salu(counter, [], imm=kc)  # initialize the loop counter
        for row in accs:
            for acc in row:
                builder.vzero(acc, DType.INT32)
        ks_per_a_load = self.a_elems_per_load // self.m_r
        for k in range(kc):
            if k % ks_per_a_load == 0:
                builder.vload(
                    a_vec,
                    a_addr + (k // ks_per_a_load) * self.a_elems_per_load,
                    DType.INT8,
                    size=self.a_elems_per_load,
                )
            builder.vload(b_raw, b_addr + k * self.n_r, DType.INT8, size=self.n_r)
            builder.vwiden(b_wide, b_raw, DType.INT8, DType.INT16)
            for i in range(self.m_r):
                lane = (k % ks_per_a_load) * self.m_r + i
                builder.vdup(tmp, a_vec, DType.INT16, lane=lane, elements=self.n_r)
                # two widening MLAs: int16 x int16 products folded into
                # 16 int32 accumulators each (low half, high half)
                for half, acc in enumerate(accs[i]):
                    mla = builder.vmla(acc, tmp, b_wide, DType.INT32)
                    mla.meta["half"] = "low" if half == 0 else "high"
            if (k + 1) % self.unroll == 0 or k + 1 == kc:
                builder.salu(counter, [counter])
                builder.loop_overhead(counter)
        # requantize tail: narrow each accumulator pair to int8, add the
        # output offset, store one 32-byte int8 row
        vb = self.vector_bytes
        for i, row in enumerate(accs):
            row_addr = c_addr + i * self.n_r * 4
            if not first_k_block:
                for half, acc in enumerate(row):
                    builder.vload(tmp, row_addr + half * vb, DType.INT32, size=vb)
                    builder.vadd(acc, acc, tmp, DType.INT32)
            for half, acc in enumerate(row):
                builder.vstore(acc, row_addr + half * vb, DType.INT32, size=vb)
        for reg in [b_raw, b_wide, a_vec, tmp] + [a for row in accs for a in row]:
            builder.vregs.free(reg)
        builder.xregs.free(counter)

    def compute_tile(self, a_panel, b_panel, acc=None):
        return exact_tile(a_panel, b_panel, acc, out_dtype=np.int32)
