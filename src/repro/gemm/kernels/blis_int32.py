"""BLIS-style 32-bit integer kernel — the edge RISC-V baseline.

The paper uses "the BLIS library supporting 32-bit integer on the edge
RISC-V SoC" as the baseline for Figure 12 and Table 1's RISC-V rows.
Structurally it is the same dup+MLA scheme as ``handv-int32`` but
compiled for an in-order single-issue core: no unrolling, so every k
iteration pays pointer-bump, compare and branch instructions.
"""

import numpy as np

from repro.gemm.kernels.handv import _HandvBase
from repro.gemm.microkernel import exact_tile, register_kernel
from repro.isa.dtypes import DType


@register_kernel
class BlisInt32Kernel(_HandvBase):
    """32-bit integer GotoBLAS micro-kernel without unrolling."""

    name = "blis-int32"
    dtype = DType.INT32
    acc_dtype = DType.INT32
    k_step = 1
    unroll = 1           # in-order edge compile: loop overhead every k

    def _configure(self):
        # the portable BLIS int32 path exercises the SoC's 64-bit
        # integer datapath (two int32 lanes), not the full SIMD width —
        # this reproduces the ~0.9 GOPS baseline the paper's 14x
        # speedups imply at 1 GHz
        self.n_r = max(2, self.vector_length_bits // 64)
        self.a_elems_per_load = max(4, self.vector_length_bits // 64)

    def compute_tile(self, a_panel, b_panel, acc=None):
        return exact_tile(a_panel, b_panel, acc, out_dtype=np.int32)
