"""Naive (MATMUL) triple-loop matrix multiplication.

The paper's Figure 1 baseline: row-major walk over A, column-major
walk over B, accumulating in a register. Provides both the numeric
result and the memory *address stream* the cache study replays.
"""

import numpy as np

from repro.isa.dtypes import DType


def naive_matmul(a, b):
    """Reference ijk triple loop (numpy-accelerated inner product)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions disagree")
    return a.astype(np.int64) @ b.astype(np.int64)


def naive_address_chunks(m, n, k, dtype=DType.FP32, a_base=0x0,
                         b_base=None, c_base=None, max_accesses=None):
    """Yield (addresses, is_write) numpy chunks for the naive ijk loop.

    A is row-major (A[i, l] at ``a_base + (i*k + l) * elem``), B is
    row-major but walked down columns (``b_base + (l*n + j) * elem``) —
    the large-stride pattern responsible for the 23-36% L1 miss rates
    of Figure 1. C accumulates straight into memory every iteration,
    as the direct compiler translation of ``C[i][j] += A[i][l] *
    B[l][j]`` does without register promotion.

    Each chunk is an int64 address array plus a matching bool write
    array, in exact program order; concatenating the chunks reproduces
    the scalar :func:`naive_address_stream` sequence access for access
    (including ``max_accesses`` truncation, which rounds up to a whole
    A/B/C-read/C-write group of 4). Chunks are the replay unit of
    :func:`repro.gemm.traces.replay_batch`.
    """
    elem = dtype.bits // 8
    if b_base is None:
        b_base = a_base + m * k * elem
    if c_base is None:
        c_base = b_base + k * n * elem
    if m <= 0 or n <= 0 or k <= 0:
        return  # degenerate problem: the ijk loop bodies never run
    # one group of 4 accesses per (i, j, l); truncation is group-granular
    # (the scalar loop checked the budget only after a full group)
    groups_left = None if max_accesses is None else max(1, -(-max_accesses // 4))
    l_addr = np.arange(k, dtype=np.int64)
    write_pattern = np.array([False, False, False, True])
    j_slab = max(1, (1 << 16) // max(k, 1))  # ~256K accesses per chunk
    for i in range(m):
        a_row = a_base + (i * k + l_addr) * elem
        for j0 in range(0, n, j_slab):
            j1 = min(n, j0 + j_slab)
            if groups_left is not None:
                # build only as many j-rows as the remaining budget needs
                j1 = min(j1, j0 + -(-groups_left // k))
            j_idx = np.arange(j0, j1, dtype=np.int64)[:, None]
            block = np.empty((j1 - j0, k, 4), dtype=np.int64)
            block[:, :, 0] = a_row[None, :]
            block[:, :, 1] = b_base + (l_addr[None, :] * n + j_idx) * elem
            c_col = c_base + (i * n + j_idx) * elem
            block[:, :, 2] = c_col
            block[:, :, 3] = c_col
            groups = block.reshape(-1, 4)
            if groups_left is not None and len(groups) > groups_left:
                groups = groups[:groups_left]
            flat = groups.reshape(-1)
            yield flat, np.tile(write_pattern, len(groups))
            if groups_left is not None:
                groups_left -= len(groups)
                if groups_left <= 0:
                    return


def naive_address_stream(m, n, k, dtype=DType.FP32, a_base=0x0,
                         b_base=None, c_base=None, max_accesses=None):
    """Yield (address, is_write) scalars for the naive ijk loop.

    Thin compatibility wrapper over :func:`naive_address_chunks`; see
    there for the stream layout and truncation semantics.
    """
    for addrs, writes in naive_address_chunks(
        m, n, k, dtype, a_base=a_base, b_base=b_base, c_base=c_base,
        max_accesses=max_accesses,
    ):
        for addr, is_write in zip(addrs.tolist(), writes.tolist()):
            yield addr, is_write
