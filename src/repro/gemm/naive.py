"""Naive (MATMUL) triple-loop matrix multiplication.

The paper's Figure 1 baseline: row-major walk over A, column-major
walk over B, accumulating in a register. Provides both the numeric
result and the memory *address stream* the cache study replays.
"""

import numpy as np

from repro.isa.dtypes import DType


def naive_matmul(a, b):
    """Reference ijk triple loop (numpy-accelerated inner product)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions disagree")
    return a.astype(np.int64) @ b.astype(np.int64)


def naive_address_stream(m, n, k, dtype=DType.FP32, a_base=0x0,
                         b_base=None, c_base=None, max_accesses=None):
    """Yield (address, is_write) for the naive ijk loop.

    A is row-major (A[i, l] at ``a_base + (i*k + l) * elem``), B is
    row-major but walked down columns (``b_base + (l*n + j) * elem``) —
    the large-stride pattern responsible for the 23-36% L1 miss rates
    of Figure 1. C accumulates straight into memory every iteration,
    as the direct compiler translation of ``C[i][j] += A[i][l] *
    B[l][j]`` does without register promotion.

    ``max_accesses`` truncates the stream for sampling large problems;
    the miss rate is steady-state after the first few rows of C, so a
    prefix is representative (validated in the tests against full runs
    on small sizes).
    """
    elem = dtype.bits // 8
    if b_base is None:
        b_base = a_base + m * k * elem
    if c_base is None:
        c_base = b_base + k * n * elem
    emitted = 0
    for i in range(m):
        for j in range(n):
            c_addr = c_base + (i * n + j) * elem
            for l in range(k):
                yield a_base + (i * k + l) * elem, False
                yield b_base + (l * n + j) * elem, False
                yield c_addr, False
                yield c_addr, True
                emitted += 4
                if max_accesses is not None and emitted >= max_accesses:
                    return
