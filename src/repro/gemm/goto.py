"""GotoBLAS five-loop driver with block-composed timing.

``GotoBlasDriver`` owns one micro-kernel + one machine config. Its two
jobs:

- ``compute(a, b)`` — numerically correct blocked GEMM through the
  kernel's ``compute_tile`` semantics (including deliberate wrapping
  kernels), validated against numpy in the tests;
- ``analyze(m, n, k)`` — cycle/instruction totals via *block
  composition*: one micro-kernel invocation is pipeline-simulated with
  warm packed panels, packing is simulated on a representative chunk,
  and both are scaled by the exact GotoBLAS trip counts. Composition
  error against full simulation is checked in the test suite on small
  shapes.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.gemm.blocking import BlockingParams, compose_plan, default_blocking
from repro.gemm.microkernel import A_PANEL_BASE, B_PANEL_BASE, MicroKernel
from repro.gemm.packing import (
    element_bytes,
    emit_pack_trace,
    pack_a_block,
    pack_b_block,
)
from repro.isa.builder import ProgramBuilder
from repro.simulator.pipeline import PipelineSimulator
from repro.simulator.stats import SimStats


def _ceil_div(a, b):
    return -(-a // b)


#: packing-chunk programs shared across drivers; emission is a pure
#: function of the key and built programs are immutable, so sharing one
#: object also shares its cached digest and compiled trace
_PACK_PROGRAM_MEMO = {}


def _pack_chunk_program(vector_length_bits, dtype, chunk_bytes):
    key = (vector_length_bits, dtype, chunk_bytes)
    program = _PACK_PROGRAM_MEMO.get(key)
    if program is None:
        builder = ProgramBuilder(
            name="pack-chunk", vector_length_bits=vector_length_bits
        )
        emit_pack_trace(builder, A_PANEL_BASE, B_PANEL_BASE, chunk_bytes, dtype)
        program = builder.build()
        _PACK_PROGRAM_MEMO[key] = program
    return program


@dataclass
class GemmExecution:
    """Composed performance result of one GEMM problem."""

    m: int
    n: int
    k: int
    kernel_name: str
    machine_name: str
    blocking: BlockingParams
    cycles: float
    stats: SimStats
    kernel_instructions: int
    packing_instructions: int
    vector_mix: Dict[str, int] = field(default_factory=dict)
    frequency_ghz: float = 1.0

    @property
    def macs(self):
        return self.m * self.n * self.k

    @property
    def total_instructions(self):
        return self.kernel_instructions + self.packing_instructions

    @property
    def cycles_per_mac(self):
        return self.cycles / self.macs

    @property
    def seconds(self):
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def gops(self):
        """Giga-operations per second (1 MAC = 2 ops, the paper's metric)."""
        return 2.0 * self.macs / self.seconds / 1e9

    def speedup_over(self, baseline):
        """Clock-cycle speedup of this execution vs ``baseline``."""
        return baseline.cycles / self.cycles

    def instruction_ratio(self, baseline):
        """Total instruction count relative to ``baseline`` (lower = better)."""
        return self.total_instructions / baseline.total_instructions


@dataclass(frozen=True)
class TrafficSegment:
    """One repeated phase of a composed GEMM's DRAM traffic timeline.

    ``events`` is the recorded DRAM stream of the representative
    simulation (micro-kernel call or packing chunk), repeated ``count``
    times at ``period``-cycle intervals. ``shared`` marks traffic whose
    addresses are common across cores under output partitioning (the A
    panels every core re-packs), so the shared LLC can model
    constructive sharing.
    """

    label: str
    events: tuple
    period: int
    count: int
    shared: bool = False

    @property
    def duration(self):
        return self.period * self.count


class GotoBlasDriver:
    """Five loops around a micro-kernel, as in Figure 3."""

    def __init__(self, kernel, config, blocking=None, hierarchy_factory=None):
        if not isinstance(kernel, MicroKernel):
            raise TypeError("kernel must be a MicroKernel instance")
        if kernel.vector_length_bits != config.vector_length_bits:
            raise ValueError(
                "kernel built for %d-bit registers but machine %r has %d-bit"
                % (kernel.vector_length_bits, config.name, config.vector_length_bits)
            )
        self.kernel = kernel
        self.config = config
        if blocking is None:
            blocking = default_blocking(
                config, kernel.dtype, kernel.m_r, kernel.n_r, kernel.k_step
            )
        self.blocking = blocking
        #: optional ``config -> MemoryHierarchy`` hook; the multi-core
        #: subsystem injects a recording hierarchy here so the
        #: representative simulations also yield DRAM event streams
        #: (latencies are unchanged — recording is pure observation)
        self.hierarchy_factory = hierarchy_factory
        # micro-kernel call simulations depend only on (kc, first_k_block)
        # and packing rate only on the dtype, so sweeps over many shapes
        # reuse them
        self._call_cache = {}
        self._pack_cache = None
        self._call_events = {}
        self._pack_events = ()

    def _make_simulator(self):
        if self.hierarchy_factory is None:
            return PipelineSimulator(self.config)
        return PipelineSimulator(
            self.config, hierarchy=self.hierarchy_factory(self.config)
        )

    # -- numeric path ----------------------------------------------------

    def compute(self, a, b):
        """Blocked GEMM with the kernel's numeric semantics.

        ``a`` is (m, k), ``b`` is (k, n). K is zero-padded up to the
        kernel's ``k_step``; fringe tiles are zero-padded like GotoBLAS
        packing does. Returns the (m, n) result in the kernel's
        accumulator dtype.
        """
        kern = self.kernel
        blk = self.blocking
        a = np.asarray(a)
        b = np.asarray(b)
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError("inner dimensions disagree: %d vs %d" % (k, k2))
        pad_k = (-k) % kern.k_step
        if pad_k:
            a = np.pad(a, ((0, 0), (0, pad_k)))
            b = np.pad(b, ((0, pad_k), (0, 0)))
            k += pad_k
        acc_np = kern.acc_dtype.numpy_dtype
        c = np.zeros(
            (m, n), dtype=np.int64 if kern.acc_dtype.is_integer else np.float64
        )
        for jc in range(0, n, blk.nc):
            nc = min(blk.nc, n - jc)
            for pc_index, pc in enumerate(range(0, k, blk.kc)):
                kc = min(blk.kc, k - pc)
                b_panels = pack_b_block(b[pc : pc + kc, jc : jc + nc], kern.n_r)
                for ic in range(0, m, blk.mc):
                    mc = min(blk.mc, m - ic)
                    a_panels = pack_a_block(a[ic : ic + mc, pc : pc + kc], kern.m_r)
                    for pi in range(a_panels.shape[0]):
                        a_panel = a_panels[pi].T  # m_r x kc
                        for pj in range(b_panels.shape[0]):
                            b_panel = b_panels[pj]  # kc x n_r
                            prev = None
                            if pc_index:
                                prev = self._tile_view(c, ic, jc, pi, pj, m, n)
                            tile = kern.compute_tile(a_panel, b_panel, acc=prev)
                            self._tile_store(c, tile, ic, jc, pi, pj, m, n)
        return c.astype(acc_np)

    def _tile_bounds(self, ic, jc, pi, pj, m, n):
        kern = self.kernel
        r0 = ic + pi * kern.m_r
        c0 = jc + pj * kern.n_r
        return r0, min(r0 + kern.m_r, m), c0, min(c0 + kern.n_r, n)

    def _tile_view(self, c, ic, jc, pi, pj, m, n):
        kern = self.kernel
        r0, r1, c0, c1 = self._tile_bounds(ic, jc, pi, pj, m, n)
        tile = np.zeros((kern.m_r, kern.n_r), dtype=c.dtype)
        tile[: r1 - r0, : c1 - c0] = c[r0:r1, c0:c1]
        return tile

    def _tile_store(self, c, tile, ic, jc, pi, pj, m, n):
        r0, r1, c0, c1 = self._tile_bounds(ic, jc, pi, pj, m, n)
        c[r0:r1, c0:c1] = tile[: r1 - r0, : c1 - c0]

    # -- timing path --------------------------------------------------------

    def _simulate_call(self, kc, first_k_block):
        key = (kc, first_k_block)
        if key not in self._call_cache:
            kern = self.kernel
            program = kern.build_call(kc, first_k_block=first_k_block)
            sim = self._make_simulator()
            stats = sim.run(program, warm_addresses=kern.warm_addresses(kc))
            self._call_cache[key] = (program, stats)
            events = getattr(sim.hierarchy.dram, "events", None)
            if events is not None:
                self._call_events[key] = tuple(events)
        return self._call_cache[key]

    def _simulate_packing_rate(self, dtype):
        """Cycles and instructions per byte of panel packing."""
        if self._pack_cache is None:
            chunk_bytes = 16 * 1024
            program = _pack_chunk_program(
                self.config.vector_length_bits, dtype, chunk_bytes
            )
            sim = self._make_simulator()
            stats = sim.run(program)
            self._pack_cache = (program, stats, chunk_bytes)
            events = getattr(sim.hierarchy.dram, "events", None)
            if events is not None:
                self._pack_events = tuple(events)
        return self._pack_cache

    def _compose_plan(self, m, n, k):
        """The block-composition schedule of one (m, n, k) GEMM.

        Delegates to :func:`repro.gemm.blocking.compose_plan`, the
        trip-count arithmetic shared with the analytic model.
        """
        kern = self.kernel
        blk = self.blocking
        return compose_plan(
            m, n, k, m_r=kern.m_r, n_r=kern.n_r, k_step=kern.k_step,
            kc=blk.kc, nc=blk.nc, elem_bytes=element_bytes(kern.dtype),
        )

    def analyze(self, m, n, k):
        """Block-composed cycles/instructions for an (m, n, k) GEMM."""
        kern = self.kernel
        blk = self.blocking
        call_plan, a_bytes, b_bytes = self._compose_plan(m, n, k)

        total = SimStats()
        mix = Counter()
        kernel_instructions = 0
        kernel_cycles = 0.0
        for call_kc, first, count in call_plan:
            program, stats = self._simulate_call(call_kc, first_k_block=first)
            total.merge_scaled(stats, count)
            kernel_cycles += stats.cycles * count
            kernel_instructions += len(program) * count
            for key, value in program.classify_vector_mix().items():
                mix[key] += value * count

        pack_program, pack_stats, chunk_bytes = self._simulate_packing_rate(kern.dtype)
        pack_scale = (a_bytes + b_bytes) / chunk_bytes
        total.merge_scaled(pack_stats, max(1, round(pack_scale)))
        pack_cycles = pack_stats.cycles * pack_scale
        pack_instructions = int(len(pack_program) * pack_scale)
        for key, value in Counter(pack_program.classify_vector_mix()).items():
            mix[key] += int(value * pack_scale)

        cycles = kernel_cycles + pack_cycles
        total.cycles = int(cycles)
        execution = GemmExecution(
            m=m,
            n=n,
            k=k,
            kernel_name=kern.name,
            machine_name=self.config.name,
            blocking=blk,
            cycles=cycles,
            stats=total,
            kernel_instructions=kernel_instructions,
            packing_instructions=pack_instructions,
            vector_mix=dict(mix),
            frequency_ghz=self.config.frequency_ghz,
        )
        return execution

    def analyze_timeline(self, m, n, k):
        """Composed analysis plus the GEMM's DRAM traffic timeline.

        Returns ``(execution, segments)`` where ``segments`` is the
        ordered list of :class:`TrafficSegment` whose expansion is the
        run's DRAM access stream: the packing burst first (split into
        the A-panel share, which output partitioning leaves common
        across cores, and the per-core B share), then the micro-kernel
        call groups in plan order. Requires a recording
        ``hierarchy_factory`` (otherwise no events were captured).
        """
        if self.hierarchy_factory is None:
            raise RuntimeError(
                "analyze_timeline needs a driver built with a recording "
                "hierarchy_factory"
            )
        execution = self.analyze(m, n, k)
        call_plan, a_bytes, b_bytes = self._compose_plan(m, n, k)
        _, pack_stats, chunk_bytes = self._simulate_packing_rate(
            self.kernel.dtype
        )
        pack_reps = max(1, round((a_bytes + b_bytes) / chunk_bytes))
        a_reps = round(pack_reps * a_bytes / (a_bytes + b_bytes))
        b_reps = pack_reps - a_reps
        segments = []
        if a_reps:
            segments.append(
                TrafficSegment("pack-a", self._pack_events,
                               pack_stats.cycles, a_reps, shared=True)
            )
        if b_reps:
            segments.append(
                TrafficSegment("pack-b", self._pack_events,
                               pack_stats.cycles, b_reps)
            )
        for call_kc, first, count in call_plan:
            _, stats = self._simulate_call(call_kc, first_k_block=first)
            label = "call-kc%d%s" % (call_kc, "-first" if first else "")
            segments.append(
                TrafficSegment(
                    label, self._call_events.get((call_kc, first), ()),
                    stats.cycles, count,
                )
            )
        return execution, segments
