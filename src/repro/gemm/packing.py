"""Panel packing (the Pack Ai / Pack Bp steps of Figure 3).

``pack_a_block`` rearranges an mc x kc block of A into row panels of
``m_r`` rows stored column-major (m_r consecutive elements per k) —
exactly the operand layout the ``camp`` instruction consumes.
``pack_b_block`` produces kc x n_r row-major panels.

Besides the numeric packing, this module models packing *cost*:
every source byte is read once and every packed byte written once via
full-width vector operations, plus one shuffle (VALU) op per loaded
vector for the layout transform. That approximation is documented in
DESIGN.md and charged through the pipeline simulator.
"""

import numpy as np

from repro.isa.dtypes import DType


def pack_a_block(a_block, m_r):
    """Pack A (mc x kc) into panels; returns array (n_panels, kc, m_r).

    Rows beyond ``mc`` in the last panel are zero-padded, matching the
    GotoBLAS treatment of fringe tiles.
    """
    a_block = np.asarray(a_block)
    mc, kc = a_block.shape
    n_panels = -(-mc // m_r)
    packed = np.zeros((n_panels, kc, m_r), dtype=a_block.dtype)
    for p in range(n_panels):
        rows = a_block[p * m_r : (p + 1) * m_r, :]
        packed[p, :, : rows.shape[0]] = rows.T
    return packed


def pack_b_block(b_block, n_r):
    """Pack B (kc x nc) into panels; returns array (n_panels, kc, n_r)."""
    b_block = np.asarray(b_block)
    kc, nc = b_block.shape
    n_panels = -(-nc // n_r)
    packed = np.zeros((n_panels, kc, n_r), dtype=b_block.dtype)
    for p in range(n_panels):
        cols = b_block[:, p * n_r : (p + 1) * n_r]
        packed[p, :, : cols.shape[1]] = cols
    return packed


def element_bytes(dtype):
    """Storage bytes per element (0.5 for packed int4)."""
    return 0.5 if dtype is DType.INT4 else dtype.bits / 8


def packing_bytes(rows, cols, dtype):
    """Bytes read (== bytes written) to pack a rows x cols block."""
    return int(rows * cols * element_bytes(dtype))


def emit_pack_trace(builder, src_addr, dst_addr, n_bytes, dtype,
                    vector_bytes=64, shuffle=True):
    """Emit the instruction trace packing ``n_bytes`` of panel data.

    One vector load per source chunk, one shuffle (modelling the
    layout transform), one vector store per packed chunk. The load
    dtype is passed through so int4 data keeps its packed density.
    """
    n_vectors = -(-n_bytes // vector_bytes)
    vec = builder.vregs.alloc()
    for i in range(n_vectors):
        builder.vload(vec, src_addr + i * vector_bytes, dtype, size=vector_bytes)
        if shuffle:
            builder.vreinterpret(
                vec, vec, dtype if dtype is not DType.INT4 else DType.INT8
            )
        builder.vstore(vec, dst_addr + i * vector_bytes, dtype, size=vector_bytes)
    builder.vregs.free(vec)
    return n_vectors
