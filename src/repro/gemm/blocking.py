"""GotoBLAS blocking parameter selection (Figure 3).

``kc x nR`` B micro-panels must live in L1 alongside the streaming A
micro-panels; ``mc x kc`` packed A blocks target L2; ``nc`` bounds the
B panel (no L3 on either platform, so it is a working-set cap).
"""

from dataclasses import dataclass

from repro.isa.dtypes import DType


def _element_bytes(dtype):
    """Storage bytes per element; int4 packs two per byte."""
    return 0.5 if dtype is DType.INT4 else dtype.bits / 8


@dataclass(frozen=True)
class BlockingParams:
    """The five GotoBLAS blocking constants."""

    m_r: int
    n_r: int
    mc: int
    kc: int
    nc: int

    def __post_init__(self):
        for name in ("m_r", "n_r", "mc", "kc", "nc"):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)
        if self.mc % self.m_r:
            raise ValueError("mc must be a multiple of m_r")
        if self.nc % self.n_r:
            raise ValueError("nc must be a multiple of n_r")

    def tiles_per_block(self, m, n):
        """Micro-kernel invocations for an mc x nc block of C."""
        m = min(m, self.mc)
        n = min(n, self.nc)
        return _ceil_div(m, self.m_r) * _ceil_div(n, self.n_r)


def _ceil_div(a, b):
    return -(-a // b)


def compose_plan(m, n, k, *, m_r, n_r, k_step, kc, nc, elem_bytes):
    """The block-composition schedule of one (m, n, k) GEMM.

    Pure GotoBLAS trip-count arithmetic, shared by the driver's
    simulation-composed :meth:`~repro.gemm.goto.GotoBlasDriver.analyze`
    and the calibrated closed-form model (:mod:`repro.analytic`) — the
    two must never drift, so both call this one function.

    Returns ``(call_plan, a_bytes, b_bytes)`` where ``call_plan`` is a
    list of ``(kc, first_k_block, count)`` micro-kernel call groups and
    the byte totals are the packed-panel traffic packing work scales
    with.
    """
    if min(m, n, k) <= 0:
        raise ValueError("matrix dimensions must be positive")
    k_eff = k + ((-k) % k_step)
    kc = min(kc, k_eff)
    kc += (-kc) % k_step
    n_full = k_eff // kc
    kc_rem = k_eff - n_full * kc          # remainder k-block depth
    kc_rem += (-kc_rem) % k_step
    tiles = _ceil_div(m, m_r) * _ceil_div(n, n_r)

    # per-tile schedule: one "first" call (kc or the remainder if it
    # is the only block), then accumulate calls for the other blocks
    call_plan = []  # (kc, first_k_block, count)
    if n_full:
        call_plan.append((kc, True, tiles))
        if n_full > 1:
            call_plan.append((kc, False, tiles * (n_full - 1)))
        if kc_rem:
            call_plan.append((kc_rem, False, tiles))
    else:
        call_plan.append((kc_rem, True, tiles))

    # packing traffic: B packed once per (jc, pc); A packed once per
    # (jc, pc, ic) — i.e. A is re-packed for every nc-wide C panel.
    n_jblocks = _ceil_div(n, nc)
    a_bytes = int(m * k_eff * elem_bytes) * n_jblocks
    b_bytes = int(k_eff * n * elem_bytes)
    return call_plan, a_bytes, b_bytes


def _round_down(value, multiple, minimum):
    rounded = (value // multiple) * multiple
    return max(rounded, minimum)


def default_blocking(config, dtype, m_r, n_r, k_step=1):
    """Derive blocking constants from a machine's cache geometry.

    ``kc`` is sized so one B micro-panel (kc x n_r) plus two A
    micro-panels fit in half of L1; ``mc`` so the packed A block
    (mc x kc) fills at most half of L2; ``nc`` caps the packed B panel
    at the remaining L2 half. ``kc`` is rounded to a multiple of the
    kernel's ``k_step`` (16/32 for CAMP) so the k-loop has no remainder
    iterations.
    """
    elem = _element_bytes(dtype)
    l1 = config.cache_configs[0].size_bytes
    l2 = config.cache_configs[1].size_bytes if len(config.cache_configs) > 1 else 8 * l1
    kc_budget = (l1 / 2) / (elem * (n_r + 2 * m_r))
    kc = _round_down(int(kc_budget), max(k_step, 16), max(k_step, 16))
    kc = min(kc, 512)
    mc_budget = (l2 / 2) / (elem * kc)
    mc = _round_down(int(mc_budget), m_r, m_r)
    mc = min(mc, 512)
    nc_budget = (l2 / 2) / (elem * kc)
    nc = _round_down(int(nc_budget), n_r, n_r)
    nc = min(nc, 4096)
    return BlockingParams(m_r=m_r, n_r=n_r, mc=mc, kc=kc, nc=nc)
