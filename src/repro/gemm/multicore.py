"""Multi-core GEMM scaling: the cycle-level simulation path.

GotoBLAS parallelizes the 5th loop (N panels) or 3rd loop (M blocks)
across cores; each core runs its own micro-kernel stream while sharing
the LLC and DRAM.

:func:`simulate_scaling_curve` is the cycle-level path: each core's
shard (from :mod:`repro.workloads.partition`) is analyzed through the
batch pipeline engine over a recording hierarchy, its composed DRAM
traffic timeline is assembled from the driver's
:class:`~repro.gemm.goto.TrafficSegment` schedule, and the per-core
streams are arbitrated deterministically through the shared LLC +
multi-channel DRAM (:class:`~repro.memory.hierarchy.SharedHierarchy`).

The closed-form cross-check model that used to live beside it was
replaced by the *calibrated* analytic model
(:meth:`repro.analytic.AnalyticModel.predict_parallel`), whose
contention coefficient is fitted against this simulator.
"""

from dataclasses import dataclass, field
from multiprocessing import Pool, current_process
from typing import List


# ---------------------------------------------------------------------------
# cycle-level simulation
# ---------------------------------------------------------------------------

#: address-space strides for the assembled per-core streams: cores get
#: disjoint working sets; successive repetitions of a representative
#: trace model fresh streaming panels (16 MB apart, so one core's later
#: repetition never fake-hits its own earlier lines in the shared LLC)
REP_ADDR_STRIDE = 1 << 24


@dataclass
class CoreScaling:
    """One core's simulated outcome within a parallel GEMM."""

    core: int
    m: int
    n: int
    k: int
    cycles: float  # final cycles, contention folded in
    isolated_cycles: float
    contention_stall_cycles: int
    llc_hits: int = 0
    llc_misses: int = 0
    dram_events: int = 0

    @property
    def dram_limited(self):
        from repro.simulator.multicore import is_dram_limited

        return is_dram_limited(self.contention_stall_cycles, self.cycles)


@dataclass
class SimulatedScaling:
    """Simulated scaling outcome for one (method, cores) point."""

    cores: int
    strategy: str
    single_core_cycles: float
    parallel_cycles: float
    per_core: List[CoreScaling] = field(default_factory=list)
    llc_hit_rate: float = 0.0
    channel_utilization: List[float] = field(default_factory=list)
    replay_converged: bool = True

    @property
    def speedup(self):
        return self.single_core_cycles / self.parallel_cycles

    @property
    def efficiency(self):
        return self.speedup / self.cores

    @property
    def contention_stall_cycles(self):
        return sum(core.contention_stall_cycles for core in self.per_core)

    @property
    def dram_limited(self):
        """The critical (slowest) core's stall attribution decides."""
        from repro.simulator.multicore import critical_core_dram_limited

        return critical_core_dram_limited(self.per_core)


def make_recording_driver(method, machine):
    """A fresh driver whose representative simulations record DRAM traffic.

    ``machine`` is a registered machine name (resolved through
    :mod:`repro.machines`, so user ``--machine-file`` machines work) or
    an explicit :class:`~repro.simulator.config.MachineConfig`.
    """
    from repro.gemm.api import resolve_machine
    from repro.gemm.goto import GotoBlasDriver
    from repro.gemm.microkernel import get_kernel
    from repro.simulator.multicore import build_recording_hierarchy

    config = resolve_machine(machine, method)
    kernel = get_kernel(method, vector_length_bits=config.vector_length_bits)
    return GotoBlasDriver(
        kernel, config, hierarchy_factory=build_recording_hierarchy
    )


def assemble_stream(segments, core, share_a=True):
    """Expand a shard's traffic timeline into its absolute event stream.

    Events from segments marked ``shared`` (the A-panel packing, when
    the partition strategy re-packs one common A per core) keep their
    base addresses so the shared LLC can model constructive cross-core
    sharing; everything else is offset into the core's private address
    space. Repetitions advance by :data:`REP_ADDR_STRIDE` to model
    streaming through fresh panels.
    """
    from repro.memory.dram import DramEvent
    from repro.simulator.multicore import CORE_ADDR_STRIDE

    stream = []
    append = stream.append
    offset = 0
    for segment in segments:
        if segment.events:
            core_off = (
                0 if (segment.shared and share_a) else core * CORE_ADDR_STRIDE
            )
            for rep in range(segment.count):
                base_cycle = offset + rep * segment.period
                addr_off = core_off + rep * REP_ADDR_STRIDE
                for event in segment.events:
                    append(
                        DramEvent(
                            cycle=base_cycle + event.cycle,
                            size=event.size,
                            addr=(
                                event.addr + addr_off
                                if event.addr >= 0 else -1
                            ),
                            write=event.write,
                            latency=event.latency,
                        )
                    )
        offset += segment.duration
    return stream


#: per-process driver cache for the shard workers (and the serial path)
_RECORDING_DRIVERS = {}


def _recording_driver_for(method, machine):
    # machine names carry the resolved spec digest so a registry
    # override of the same name can never serve a stale driver; specs
    # (which are not hashable) key by their own digest
    key = (method, machine)
    if isinstance(machine, str):
        from repro.machines import get_spec

        key = (method, machine, get_spec(machine).digest())
    else:
        from repro.machines import MachineSpec

        if isinstance(machine, MachineSpec):
            key = (method, machine.name, machine.digest())
    if key not in _RECORDING_DRIVERS:
        _RECORDING_DRIVERS[key] = make_recording_driver(method, machine)
    return _RECORDING_DRIVERS[key]


def reset_recording_drivers():
    """Drop the cached recording drivers (test isolation)."""
    _RECORDING_DRIVERS.clear()


def _analyze_shard(task):
    """Worker: timeline-analyze one core's shard.

    Top-level and name-keyed so the orchestrator-style process pool can
    pickle it; the per-process driver cache keeps one recording driver
    per (method, machine) warm across shards.
    """
    method, machine, m, n, k = task
    driver = _recording_driver_for(method, machine)
    return driver.analyze_timeline(m, n, k)


def simulate_parallel_gemm(method, m, n, k, cores, machine="a64fx",
                           strategy="npanel", jobs=1, llc_config=None,
                           dram_channels=None):
    """Cycle-level parallel GEMM: returns :class:`SimulatedScaling`.

    Each core's shard is pipeline-simulated in isolation (fanned across
    ``jobs`` worker processes when > 1 — the arbitration always runs in
    the parent, so results are independent of ``jobs``), then the
    shards' DRAM timelines contend in the shared hierarchy. One core
    owns the whole chip: ``cores=1`` is the plain single-core analysis,
    bit-identical to the batch engine.
    """
    from repro.memory.hierarchy import SharedHierarchy
    from repro.simulator.multicore import default_llc_config, shared_dram
    from repro.workloads.partition import partition_gemm

    if cores < 1:
        raise ValueError("cores must be >= 1")
    driver = _recording_driver_for(method, machine)
    single = driver.analyze(m, n, k)
    if cores == 1:
        return SimulatedScaling(
            cores=1,
            strategy=strategy,
            single_core_cycles=single.cycles,
            parallel_cycles=single.cycles,
            per_core=[
                CoreScaling(core=0, m=m, n=n, k=k, cycles=single.cycles,
                            isolated_cycles=single.cycles,
                            contention_stall_cycles=0)
            ],
        )
    kernel = driver.kernel
    shards = partition_gemm(m, n, k, cores, strategy=strategy,
                            m_r=kernel.m_r, n_r=kernel.n_r)
    tasks = [
        (method, machine, shard.m, shard.n, shard.k) for shard in shards
    ]
    if jobs > 1 and len(tasks) > 1 and not current_process().daemon:
        # daemonic pool workers (an orchestrator fan-out already in
        # flight) cannot spawn children; fall back to the serial path,
        # which is result-identical anyway
        with Pool(processes=min(jobs, len(tasks))) as pool:
            analyzed = pool.map(_analyze_shard, tasks)
    else:
        analyzed = [_analyze_shard(task) for task in tasks]
    streams = [
        assemble_stream(segments, shard.core,
                        share_a=(strategy == "npanel"))
        for shard, (_, segments) in zip(shards, analyzed)
    ]
    durations = [int(execution.stats.cycles) for execution, _ in analyzed]
    config = driver.config
    shared = SharedHierarchy(
        shared_dram(config, channels=dram_channels),
        llc_config if llc_config is not None else default_llc_config(config),
    )
    outcome = shared.replay(streams, durations)
    per_core = []
    for shard, (execution, _), replayed in zip(shards, analyzed,
                                               outcome.per_core):
        per_core.append(
            CoreScaling(
                core=shard.core,
                m=shard.m,
                n=shard.n,
                k=shard.k,
                cycles=execution.cycles + replayed.extra_cycles,
                isolated_cycles=execution.cycles,
                contention_stall_cycles=replayed.extra_cycles,
                llc_hits=replayed.llc_hits,
                llc_misses=replayed.llc_misses,
                dram_events=replayed.events,
            )
        )
    parallel_cycles = max(core.cycles for core in per_core)
    return SimulatedScaling(
        cores=cores,
        strategy=strategy,
        single_core_cycles=single.cycles,
        parallel_cycles=parallel_cycles,
        per_core=per_core,
        llc_hit_rate=outcome.llc_hit_rate,
        channel_utilization=outcome.channel_utilization,
        replay_converged=outcome.converged,
    )


def simulate_scaling_curve(method, m, n, k, core_counts=(1, 2, 4, 8, 16),
                           machine="a64fx", strategy="npanel", jobs=1,
                           llc_config=None, dram_channels=None):
    """Simulated multicore scaling across a list of core counts."""
    return [
        simulate_parallel_gemm(
            method, m, n, k, cores, machine=machine, strategy=strategy,
            jobs=jobs, llc_config=llc_config, dram_channels=dram_channels,
        )
        for cores in core_counts
    ]
