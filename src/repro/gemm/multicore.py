"""Multi-core GEMM scaling model (the A64FX platform has 16 cores).

GotoBLAS parallelizes the 5th loop (N panels) or 3rd loop (M blocks)
across cores; each core runs its own micro-kernel stream while sharing
the L2 and DRAM. We model per-core work as an independent single-core
analysis of the partitioned problem and apply a shared-resource factor
from the combined DRAM/packing traffic — enough to study how CAMP's
bandwidth appetite scales relative to the baselines' compute appetite.
"""

from dataclasses import dataclass

from repro.gemm.packing import element_bytes


def _ceil_div(a, b):
    return -(-a // b)


@dataclass
class MulticoreResult:
    """Scaling outcome for one (method, cores) point."""

    cores: int
    single_core_cycles: float
    parallel_cycles: float
    dram_limited: bool

    @property
    def speedup(self):
        return self.single_core_cycles / self.parallel_cycles

    @property
    def efficiency(self):
        return self.speedup / self.cores


def parallel_gemm_analysis(driver, m, n, k, cores=16):
    """Scale one GEMM across ``cores`` with an N-panel partition.

    Per-core cycles come from analyzing the N/cores slice; the shared
    memory system imposes a floor of (total compulsory traffic) /
    (DRAM bytes per cycle), which is what eventually bends the curve.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    single = driver.analyze(m, n, k)
    if cores == 1:
        return MulticoreResult(1, single.cycles, single.cycles, False)
    n_slice = max(driver.kernel.n_r, _ceil_div(n, cores))
    per_core = driver.analyze(m, n_slice, k)
    elem = element_bytes(driver.kernel.dtype)
    # compulsory traffic: every core streams the shared A once per
    # jc panel plus its own B slice; C written once
    total_bytes = (
        cores * m * k * elem + k * n * elem + m * n * 4
    )
    dram_floor = total_bytes / driver.config.dram_bytes_per_cycle
    parallel_cycles = max(per_core.cycles, dram_floor)
    return MulticoreResult(
        cores=cores,
        single_core_cycles=single.cycles,
        parallel_cycles=parallel_cycles,
        dram_limited=dram_floor > per_core.cycles,
    )


def scaling_curve(driver, m, n, k, core_counts=(1, 2, 4, 8, 16)):
    """Multicore scaling across a list of core counts."""
    return [parallel_gemm_analysis(driver, m, n, k, cores) for cores in core_counts]
