"""Address-stream generators for the cache-locality study (Figure 1).

The blocked (ulmBLAS/GotoBLAS) stream mirrors the packed-panel access
pattern: packing reads each source block once and writes contiguous
panels; the micro-kernel then streams those panels sequentially with
heavy reuse. Replaying either stream through
:class:`repro.memory.MemoryHierarchy` yields the L1 miss rates the
paper plots.

Streams come in two granularities:

- ``*_address_chunks`` generators yield ``(addresses, is_write)``
  numpy array pairs in exact program order — the input unit of
  :func:`replay_batch`, which drives the vectorized batch cache engine
  (:mod:`repro.memory.batch`) via
  :meth:`~repro.memory.hierarchy.MemoryHierarchy.access_batch`.
- ``*_address_stream`` wrappers flatten those chunks into the legacy
  scalar ``(address, is_write)`` tuples for one-at-a-time replay.

Both spellings produce the identical access sequence, so miss rates
from :func:`replay` and :func:`replay_batch` agree exactly.
"""

import numpy as np

from repro.gemm.naive import naive_address_chunks, naive_address_stream
from repro.isa.dtypes import DType
from repro.memory.batch import coalesce_chunks


def blocked_address_chunks(m, n, k, blocking, dtype=DType.FP32, a_base=0x0,
                           b_base=None, c_base=None, packed_base=None,
                           max_accesses=None):
    """Yield (addresses, is_write) numpy chunks for GotoBLAS-blocked GEMM.

    Element-granular like the naive stream so miss rates are directly
    comparable. Packing touches the source block once (A column-walks
    within an mc-row band — short strides — and B row-walks); the
    micro-kernel then reads the packed panels sequentially.

    ``max_accesses`` truncates at the same boundaries the scalar
    generator checked: after any pack read/write pair, after each
    micro-kernel k-step (``m_r + n_r`` panel reads), and after a whole
    C tile — so chunked and scalar streams stay identical access for
    access.
    """
    elem = dtype.bits // 8
    if b_base is None:
        b_base = a_base + m * k * elem
    if c_base is None:
        c_base = b_base + k * n * elem
    if packed_base is None:
        packed_base = c_base + m * n * elem
    packed_a = packed_base
    packed_b = packed_base + blocking.mc * blocking.kc * elem

    m_r, n_r = blocking.m_r, blocking.n_r
    count = 0

    def take(addrs, writes, unit):
        """Truncate a block to whole ``unit``-sized groups of budget left.

        Returns (addresses, writes, done); mirrors the scalar
        generator, which stopped at the first ``unit`` boundary where
        the running count reached ``max_accesses``.
        """
        nonlocal count
        if max_accesses is None:
            count += addrs.size
            return addrs, writes, False
        units_wanted = -(-(max_accesses - count) // unit)
        units_have = addrs.size // unit
        if units_wanted < units_have:
            addrs = addrs[: units_wanted * unit]
            writes = writes[: units_wanted * unit]
        count += addrs.size
        return addrs, writes, count >= max_accesses

    pair_writes = np.array([False, True])

    for jc in range(0, n, blocking.nc):
        nc = min(blocking.nc, n - jc)
        for pc in range(0, k, blocking.kc):
            kc = min(blocking.kc, k - pc)
            l_idx = np.arange(kc, dtype=np.int64)[:, None]
            # pack B(kc x nc) panel-major: each n_r-wide panel is stored
            # contiguously (kc rows of n_r elements)
            for p in range(0, nc, n_r):
                panel_base = packed_b + p * kc * elem
                jn = min(n_r, nc - p)
                j_idx = np.arange(jn, dtype=np.int64)[None, :]
                block = np.empty((kc, jn, 2), dtype=np.int64)
                block[:, :, 0] = b_base + ((pc + l_idx) * n + jc + p + j_idx) * elem
                block[:, :, 1] = panel_base + (l_idx * n_r + j_idx) * elem
                addrs, writes, done = take(
                    block.reshape(-1), np.tile(pair_writes, kc * jn), 2
                )
                yield addrs, writes
                if done:
                    return
            for ic in range(0, m, blocking.mc):
                mc = min(blocking.mc, m - ic)
                # pack A(mc x kc) panel-major: m_r-row panels stored
                # column-major (m_r consecutive elements per k)
                for p in range(0, mc, m_r):
                    panel_base = packed_a + p * kc * elem
                    im = min(m_r, mc - p)
                    i_idx = np.arange(im, dtype=np.int64)[None, :]
                    block = np.empty((kc, im, 2), dtype=np.int64)
                    block[:, :, 0] = a_base + ((ic + p + i_idx) * k + pc + l_idx) * elem
                    block[:, :, 1] = panel_base + (l_idx * m_r + i_idx) * elem
                    addrs, writes, done = take(
                        block.reshape(-1), np.tile(pair_writes, kc * im), 2
                    )
                    yield addrs, writes
                    if done:
                        return
                # micro-kernel sweep: stream the packed panels (both
                # contiguous by construction) and touch the C tile
                a_lane = np.arange(m_r, dtype=np.int64)[None, :]
                b_lane = np.arange(n_r, dtype=np.int64)[None, :]
                for jr in range(0, nc, n_r):
                    b_panel = packed_b + jr * kc * elem
                    for ir in range(0, mc, m_r):
                        a_panel = packed_a + ir * kc * elem
                        block = np.empty((kc, m_r + n_r), dtype=np.int64)
                        block[:, :m_r] = a_panel + (l_idx * m_r + a_lane) * elem
                        block[:, m_r:] = b_panel + (l_idx * n_r + b_lane) * elem
                        addrs, writes, done = take(
                            block.reshape(-1),
                            np.zeros(kc * (m_r + n_r), dtype=bool),
                            m_r + n_r,
                        )
                        yield addrs, writes
                        if done:
                            return
                        tile = np.empty((m_r, n_r, 2), dtype=np.int64)
                        tile[:, :, 0] = c_base + (
                            (ic + ir + np.arange(m_r, dtype=np.int64)[:, None]) * n
                            + jc + jr + np.arange(n_r, dtype=np.int64)[None, :]
                        ) * elem
                        tile[:, :, 1] = tile[:, :, 0]
                        addrs, writes, done = take(
                            tile.reshape(-1),
                            np.tile(pair_writes, m_r * n_r),
                            2 * m_r * n_r,
                        )
                        yield addrs, writes
                        if done:
                            return


def blocked_address_stream(m, n, k, blocking, dtype=DType.FP32, a_base=0x0,
                           b_base=None, c_base=None, packed_base=None,
                           max_accesses=None):
    """Yield (address, is_write) scalars for GotoBLAS-blocked GEMM.

    Thin compatibility wrapper over :func:`blocked_address_chunks`; see
    there for the stream layout and truncation semantics.
    """
    for addrs, writes in blocked_address_chunks(
        m, n, k, blocking, dtype, a_base=a_base, b_base=b_base,
        c_base=c_base, packed_base=packed_base, max_accesses=max_accesses,
    ):
        for addr, is_write in zip(addrs.tolist(), writes.tolist()):
            yield addr, is_write


def replay(stream, hierarchy):
    """Feed a scalar (address, is_write) stream through a hierarchy."""
    for addr, is_write in stream:
        hierarchy.access(addr, 1, is_write=is_write)
    return hierarchy


def replay_batch(chunks, hierarchy):
    """Feed an (addresses, is_write) chunk stream through a hierarchy.

    Equivalent to :func:`replay` on the flattened stream but runs
    through the vectorized batch cache engine; identical hit/miss/
    eviction/writeback counts, an order of magnitude faster on the
    element-granular GEMM streams. Chunks are coalesced to amortize
    the per-batch numpy fixed costs (the access sequence is unchanged).
    """
    for addrs, writes in coalesce_chunks(chunks, target=1 << 18):
        hierarchy.access_batch(addrs, writes)
    return hierarchy


def miss_rate_of(stream, hierarchy, level="l1"):
    """L1 (or named level) miss rate after replaying a scalar ``stream``."""
    replay(stream, hierarchy)
    return hierarchy.miss_rate(level)


def batch_miss_rate_of(chunks, hierarchy, level="l1"):
    """L1 (or named level) miss rate after batch-replaying ``chunks``."""
    replay_batch(chunks, hierarchy)
    return hierarchy.miss_rate(level)


__all__ = [
    "naive_address_chunks",
    "naive_address_stream",
    "blocked_address_chunks",
    "blocked_address_stream",
    "replay",
    "replay_batch",
    "miss_rate_of",
    "batch_miss_rate_of",
]
