"""Address-stream generators for the cache-locality study (Figure 1).

The blocked (ulmBLAS/GotoBLAS) stream mirrors the packed-panel access
pattern: packing reads each source block once and writes contiguous
panels; the micro-kernel then streams those panels sequentially with
heavy reuse. Replaying either stream through
:class:`repro.memory.MemoryHierarchy` yields the L1 miss rates the
paper plots.
"""

from repro.gemm.blocking import BlockingParams
from repro.gemm.naive import naive_address_stream
from repro.isa.dtypes import DType


def blocked_address_stream(m, n, k, blocking, dtype=DType.FP32, a_base=0x0,
                           b_base=None, c_base=None, packed_base=None,
                           max_accesses=None):
    """Yield (address, is_write) for GotoBLAS-blocked GEMM.

    Element-granular like the naive stream so miss rates are directly
    comparable. Packing touches the source block once (A column-walks
    within an mc-row band — short strides — and B row-walks); the
    micro-kernel then reads the packed panels sequentially.
    """
    elem = dtype.bits // 8
    if b_base is None:
        b_base = a_base + m * k * elem
    if c_base is None:
        c_base = b_base + k * n * elem
    if packed_base is None:
        packed_base = c_base + m * n * elem
    packed_a = packed_base
    packed_b = packed_base + blocking.mc * blocking.kc * elem

    count = 0

    def emit(addr, is_write):
        nonlocal count
        count += 1
        return addr, is_write

    m_r, n_r = blocking.m_r, blocking.n_r
    for jc in range(0, n, blocking.nc):
        nc = min(blocking.nc, n - jc)
        for pc in range(0, k, blocking.kc):
            kc = min(blocking.kc, k - pc)
            # pack B(kc x nc) panel-major: each n_r-wide panel is stored
            # contiguously (kc rows of n_r elements)
            for p in range(0, nc, n_r):
                panel_base = packed_b + p * kc * elem
                for l in range(kc):
                    for j in range(min(n_r, nc - p)):
                        yield emit(b_base + ((pc + l) * n + jc + p + j) * elem, False)
                        yield emit(panel_base + (l * n_r + j) * elem, True)
                        if max_accesses is not None and count >= max_accesses:
                            return
            for ic in range(0, m, blocking.mc):
                mc = min(blocking.mc, m - ic)
                # pack A(mc x kc) panel-major: m_r-row panels stored
                # column-major (m_r consecutive elements per k)
                for p in range(0, mc, m_r):
                    panel_base = packed_a + p * kc * elem
                    for l in range(kc):
                        for i in range(min(m_r, mc - p)):
                            yield emit(
                                a_base + ((ic + p + i) * k + pc + l) * elem, False
                            )
                            yield emit(panel_base + (l * m_r + i) * elem, True)
                            if max_accesses is not None and count >= max_accesses:
                                return
                # micro-kernel sweep: stream the packed panels (both
                # contiguous by construction) and touch the C tile
                for jr in range(0, nc, n_r):
                    b_panel = packed_b + jr * kc * elem
                    for ir in range(0, mc, m_r):
                        a_panel = packed_a + ir * kc * elem
                        for l in range(kc):
                            for i in range(m_r):
                                yield emit(a_panel + (l * m_r + i) * elem, False)
                            for j in range(n_r):
                                yield emit(b_panel + (l * n_r + j) * elem, False)
                            if max_accesses is not None and count >= max_accesses:
                                return
                        for i in range(m_r):
                            for j in range(n_r):
                                addr = c_base + (
                                    (ic + ir + i) * n + jc + jr + j
                                ) * elem
                                yield emit(addr, False)
                                yield emit(addr, True)
                        if max_accesses is not None and count >= max_accesses:
                            return


def replay(stream, hierarchy):
    """Feed an address stream through a memory hierarchy."""
    for addr, is_write in stream:
        hierarchy.access(addr, 1, is_write=is_write)
    return hierarchy


def miss_rate_of(stream, hierarchy, level="l1"):
    """L1 (or named level) miss rate after replaying ``stream``."""
    replay(stream, hierarchy)
    return hierarchy.miss_rate(level)


__all__ = [
    "naive_address_stream",
    "blocked_address_stream",
    "replay",
    "miss_rate_of",
]
