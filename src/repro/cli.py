"""Command-line interface.

::

    python -m repro.cli list                      # kernels + experiments
    python -m repro.cli gemm 512 512 512 --method camp8
    python -m repro.cli experiment table1 [--fast]
    python -m repro.cli experiment all --fast --jobs 4 --out artifacts/
    python -m repro.cli ablation vector-length
    python -m repro.cli sweep --sizes 128,256 --methods camp8,camp4
    python -m repro.cli area

Experiments and ablations run through the orchestrator
(:mod:`repro.experiments.orchestrator`):

- ``--jobs N`` fans independent experiments across a process pool.
- Results are cached on disk (``$REPRO_CACHE_DIR``, default
  ``~/.cache/repro-camp``), keyed by experiment name, fast flag, a
  digest of every ``src/repro`` source file and a digest of the run
  parameters — so a warm rerun is near-instant, and any code or
  parameter change recomputes exactly what it invalidates. Disable
  with ``--no-cache``; point elsewhere with ``--cache-dir``.
- ``--out DIR`` writes machine-readable artifacts per experiment
  (``<name>.json`` + ``<name>.csv`` + ``manifest.json``; schema in
  :mod:`repro.experiments.artifacts`).
- ``--format text|json|csv`` selects the stdout rendering.

``sweep`` drives shapes x methods x machines through
``runner.speedup_rows`` with the same cache/artifact plumbing. Sweeps
(and experiment batches) decompose into per-point tasks on the
work-queue executor: ``--retries`` / ``--task-timeout`` apply per
point, ``--run-id NAME`` journals progress so an interrupted run (exit
code 3) continues with ``--resume NAME`` recomputing only unfinished
points, ``experiment runs`` lists resumable journals, and ``cache
stats`` / ``cache prune`` keep the result store bounded.

Machines resolve through the declarative registry
(:mod:`repro.machines`): ``list``'s machine line, every ``--machine`` /
``--machines`` validation, and the per-platform sweep baselines all
derive from registered specs. ``--machine-file PATH`` (or
``$REPRO_MACHINE_PATH``) loads user-defined TOML/JSON machine
descriptions; the registry digest joins the result-cache key, so an
edited machine file never serves stale cached records.
"""

import argparse
import json
import os
import sys
import time


def _apply_engine(args):
    """Install the requested pipeline engine process-wide.

    Exported through the environment as well so orchestrator worker
    processes inherit the choice.
    """
    engine = getattr(args, "engine", None)
    if engine:
        from repro.simulator.engine import set_default_engine

        os.environ["REPRO_PIPELINE_ENGINE"] = engine
        set_default_engine(engine)
    if getattr(args, "no_trace_cache", False):
        # env-only: the trace cache re-reads the variable on every
        # lookup, and worker processes inherit the environment
        from repro.simulator.engine import TRACE_CACHE_ENV

        os.environ[TRACE_CACHE_ENV] = "1"


def _apply_machine_files(args):
    """Load every ``--machine-file`` into the process-wide registry.

    Also appended to ``$REPRO_MACHINE_PATH`` so any spawned worker
    process resolves the same registry regardless of start method.
    """
    paths = getattr(args, "machine_file", None) or []
    if not paths:
        return 0
    from repro.machines import (
        MACHINE_PATH_ENV,
        MachineSpecError,
        load_machine_file,
    )

    for path in paths:
        try:
            load_machine_file(path)
        except MachineSpecError as error:
            print("machine file error: %s" % error, file=sys.stderr)
            return 2
    existing = os.environ.get(MACHINE_PATH_ENV, "")
    entries = [e for e in existing.split(os.pathsep) if e]
    entries += [p for p in paths if p not in entries]
    os.environ[MACHINE_PATH_ENV] = os.pathsep.join(entries)
    return 0


def _cmd_list(_args):
    from repro.experiments import orchestrator
    from repro.gemm.microkernel import kernel_names
    from repro.machines import machine_names

    print("kernels     :", ", ".join(kernel_names()))
    print("machines    :", ", ".join(machine_names()))
    print("experiments :", ", ".join(sorted(orchestrator.names("experiment"))))
    print("ablations   :", ", ".join(sorted(orchestrator.names("ablation"))))
    return 0


def _unknown_machine(name):
    from repro.machines import machine_names

    if name in machine_names():
        return 0
    print(
        "unknown machine %r; available: %s (load more with --machine-file)"
        % (name, ", ".join(machine_names())),
        file=sys.stderr,
    )
    return 2


def _cmd_gemm(args):
    import numpy as np

    from repro.gemm.api import analyze, gemm

    if _unknown_machine(args.machine):
        return 2
    if args.verify and args.backend == "analytic":
        print("gemm error: --verify needs the numeric path; drop "
              "--backend analytic", file=sys.stderr)
        return 2
    if args.verify:
        rng = np.random.default_rng(args.seed)
        bits = 4 if args.method == "camp4" else 8
        lo, hi = -(1 << (bits - 1)), 1 << (bits - 1)
        if args.method == "openblas-fp32":
            a = rng.normal(size=(args.m, args.k)).astype(np.float32)
            b = rng.normal(size=(args.k, args.n)).astype(np.float32)
        else:
            a = rng.integers(lo, hi, size=(args.m, args.k)).astype(np.int8)
            b = rng.integers(lo, hi, size=(args.k, args.n)).astype(np.int8)
        result = gemm(a, b, method=args.method, machine=args.machine)
        execution = result.execution
        print("numeric verification: computed %dx%d result" % result.c.shape)
    else:
        execution = analyze(args.m, args.n, args.k, method=args.method,
                            machine=args.machine, backend=args.backend)
    kernel_name = getattr(execution, "kernel_name", None) or execution.method
    backend_note = " (analytic model)" if args.backend == "analytic" else ""
    print("method        : %s on %s%s" % (kernel_name,
                                          execution.machine_name,
                                          backend_note))
    print("cycles        : %.4g" % execution.cycles)
    print("instructions  : %d (kernel %d + packing %d)" % (
        execution.total_instructions, execution.kernel_instructions,
        execution.packing_instructions))
    print("cycles/MAC    : %.4f" % execution.cycles_per_mac)
    print("throughput    : %.1f GOPS @ %.1f GHz" % (
        execution.gops, execution.frequency_ghz))
    if hasattr(execution, "blocking"):
        print("blocking      : mc=%d kc=%d nc=%d (m_r=%d n_r=%d)" % (
            execution.blocking.mc, execution.blocking.kc,
            execution.blocking.nc, execution.blocking.m_r,
            execution.blocking.n_r))
    return 0


def _cache_from_args(args):
    from repro.experiments.cache import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(getattr(args, "cache_dir", None))


def _progress_printer(args):
    """Per-point progress lines for long sweeps (stderr).

    Enabled by ``--progress``, or automatically when stderr is a
    terminal — an hour-long grid should not look hung.
    """
    enabled = getattr(args, "progress", False) or (
        hasattr(sys.stderr, "isatty") and sys.stderr.isatty()
    )
    if not enabled:
        return None

    def on_point(done, total, point_id, status, elapsed_s):
        detail = status if status != "computed" else "%.2fs" % elapsed_s
        print("[%d/%d] %s (%s)" % (done, total, point_id, detail),
              file=sys.stderr)

    return on_point


def _executor_kwargs(args):
    """``run_many``/``run_sweep`` kwargs from the executor CLI options."""
    return {
        "retries": getattr(args, "retries", 0),
        "task_timeout": getattr(args, "task_timeout", None),
        "run_id": getattr(args, "run_id", None),
        "resume": getattr(args, "resume", None),
        "on_point": _progress_printer(args),
    }


def _run_interrupted(error, command):
    """Report an interrupted/failed executor run with the resume hint."""
    from repro.experiments import executor

    interrupted = isinstance(error, executor.InterruptedRun)
    print("%s %s: %s" % (command,
                         "interrupted" if interrupted else "failed", error),
          file=sys.stderr)
    if error.run_id:
        print("resume with: --resume %s" % error.run_id, file=sys.stderr)
    return 3 if interrupted else 1


def _cmd_runs(args):
    """List (and optionally prune) the journals under the cache dir."""
    from repro.experiments import executor

    if getattr(args, "prune_days", None) is not None:
        removed = executor.prune_runs(args.prune_days)
        print("pruned %d journal%s%s"
              % (len(removed), "" if len(removed) == 1 else "s",
                 (": " + ", ".join(removed)) if removed else ""))
        return 0
    runs = executor.list_runs()
    if not runs:
        print("no recorded runs under %s" % executor.journals_dir())
        return 0
    print("%-34s %-18s %-20s %7s %s"
          % ("run id", "experiment", "created", "points", "state"))
    for entry in runs:
        created = "?"
        if entry["created_unix"]:
            created = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(entry["created_unix"])
            )
        print("%-34s %-18s %-20s %7d %s"
              % (entry["run_id"], entry["experiment"], created,
                 entry["points"],
                 "done" if entry["done"] else "resumable"))
    return 0


def _print_tier_stats(stats):
    print("cache root   : %s" % stats["root"])
    print("entries      : %d" % stats["entries"])
    print("total size   : %.2f MB" % (stats["total_bytes"] / 1e6))
    if stats["oldest_age_s"] is not None:
        print("oldest entry : %.1f days" % (stats["oldest_age_s"] / 86400))
        print("newest entry : %.1f days" % (stats["newest_age_s"] / 86400))


def _cmd_cache(args):
    """Cache maintenance over both tiers: ``cache stats`` / ``cache prune``.

    The result tier holds experiment records (JSON), the trace tier
    holds the batch engine's persisted compiled traces (``.rptc``);
    both live under the same root and are inspected/pruned together.
    """
    from repro.experiments.cache import ResultCache
    from repro.simulator import trace_cache

    cache_dir = getattr(args, "cache_dir", None)
    cache = ResultCache(cache_dir)
    if args.action == "stats":
        print("result tier")
        _print_tier_stats(cache.disk_stats())
        print()
        print("compiled-trace tier")
        _print_tier_stats(trace_cache.disk_stats(cache_dir))
        return 0
    # prune
    if args.max_age_days is None and args.max_size_mb is None:
        print("cache prune needs --max-age-days and/or --max-size-mb",
              file=sys.stderr)
        return 2
    removed, freed = cache.prune(
        max_age_days=args.max_age_days, max_size_mb=args.max_size_mb
    )
    trace_removed, trace_freed = trace_cache.prune(
        max_age_days=args.max_age_days, max_size_mb=args.max_size_mb,
        base=cache_dir,
    )
    print("pruned %d result entr%s (%.2f MB freed), %d compiled-trace "
          "entr%s (%.2f MB freed)"
          % (removed, "y" if removed == 1 else "ies", freed / 1e6,
             trace_removed, "y" if trace_removed == 1 else "ies",
             trace_freed / 1e6))
    return 0


def _emit_results(results, args, jobs=1):
    """Render results to stdout per --format and write --out artifacts."""
    from repro.experiments import artifacts

    out_format = getattr(args, "format", "text")
    if out_format == "text":
        for result in results:
            print(result.text)
            print()
    elif out_format == "json":
        documents = [artifacts.result_document(r) for r in results]
        print(json.dumps(documents, sort_keys=True, indent=2))
    else:  # csv
        for result in results:
            print("# %s" % result.name)
            print(artifacts.csv_text(result.records), end="")
    if getattr(args, "out", None):
        artifacts.write_batch(args.out, results, jobs=jobs)
    return 0


def _run_registered(kind, args):
    from repro.experiments import executor, orchestrator

    if kind == "experiment" and args.name == "runs":
        return _cmd_runs(args)
    known = orchestrator.names(kind)
    if args.name == "all":
        requested = known
    elif args.name not in known:
        print("unknown %s %r; try: %s"
              % (kind, args.name, ", ".join(sorted(known)) + ", all"),
              file=sys.stderr)
        return 2
    else:
        requested = [args.name]
    run_kwargs = {}
    if getattr(args, "cores", None):
        try:
            core_counts = _parse_int_list(args.cores)
        except ValueError as error:
            print("bad --cores: %s" % error, file=sys.stderr)
            return 2
        if not core_counts or any(cores < 1 for cores in core_counts):
            print("bad --cores: core counts must be >= 1", file=sys.stderr)
            return 2
        unsupported = [
            name for name in requested if name not in orchestrator.CORES_AWARE
        ]
        if unsupported:
            print(
                "--cores only applies to the multi-core experiments (%s), "
                "not: %s" % (
                    ", ".join(sorted(orchestrator.CORES_AWARE)),
                    ", ".join(unsupported),
                ),
                file=sys.stderr,
            )
            return 2
        run_kwargs = {"cores": core_counts, "jobs": args.jobs}
    if getattr(args, "machine", None):
        if _unknown_machine(args.machine):
            return 2
        unsupported = [
            name for name in requested
            if name not in orchestrator.MACHINE_AWARE
        ]
        if unsupported:
            print(
                "--machine only applies to the machine-parametric "
                "experiments (%s); the paper figures are platform-pinned, "
                "not: %s" % (
                    ", ".join(sorted(orchestrator.MACHINE_AWARE)),
                    ", ".join(unsupported),
                ),
                file=sys.stderr,
            )
            return 2
        run_kwargs["machine"] = args.machine
    try:
        results = orchestrator.run_many(
            requested, fast=args.fast, jobs=args.jobs,
            cache=_cache_from_args(args), run_kwargs=run_kwargs,
            **_executor_kwargs(args),
        )
    except executor.JournalError as error:
        print("%s error: %s" % (kind, error), file=sys.stderr)
        return 2
    except executor.ExecutorError as error:
        return _run_interrupted(error, kind)
    return _emit_results(results, args, jobs=args.jobs)


def _cmd_experiment(args):
    return _run_registered("experiment", args)


def _cmd_ablation(args):
    return _run_registered("ablation", args)


def _parse_int_list(text):
    return [int(part) for part in text.split(",") if part]


def _parse_shape_list(text):
    shapes = []
    for part in text.split(","):
        if not part:
            continue
        dims = part.split("x")
        if len(dims) != 3:
            raise ValueError("shape %r is not MxNxK" % part)
        shapes.append(tuple(int(d) for d in dims))
    return shapes


def _sweep_error(message):
    print("sweep error: %s" % message, file=sys.stderr)
    return 2


def _cmd_sweep(args):
    from repro.experiments import executor, orchestrator
    from repro.gemm.microkernel import kernel_names
    from repro.machines import machine_names

    try:
        sizes = _parse_int_list(args.sizes)
        shapes = _parse_shape_list(args.shapes)
    except ValueError as error:
        return _sweep_error(error)
    if not sizes and not shapes:
        return _sweep_error("need at least one of --sizes / --shapes")
    methods = [m for m in args.methods.split(",") if m]
    machines = [m for m in args.machines.split(",") if m]
    known_machines = machine_names()
    known_methods = set(kernel_names())
    for machine in machines:
        if machine not in known_machines:
            return _sweep_error(
                "unknown machine %r; available: %s"
                % (machine, ", ".join(known_machines))
            )
    for method in list(methods) + [args.baseline or ""]:
        if method and method not in known_methods:
            return _sweep_error(
                "unknown method %r; available: %s"
                % (method, ", ".join(sorted(known_methods)))
            )
    core_counts = None
    if args.cores:
        try:
            core_counts = _parse_int_list(args.cores)
        except ValueError as error:
            return _sweep_error(error)
        if not core_counts or any(cores < 1 for cores in core_counts):
            return _sweep_error("core counts must be >= 1")
        if args.baseline:
            return _sweep_error(
                "--baseline does not apply to --cores runs (multi-core "
                "speedups are against each method's own single-core run)"
            )
    try:
        result = orchestrator.run_sweep(
            sizes=sizes,
            shapes=shapes,
            methods=methods,
            machines=machines,
            baseline=args.baseline,
            cache=_cache_from_args(args),
            core_counts=core_counts,
            strategy=args.strategy,
            jobs=args.jobs,
            backend=args.backend,
            **_executor_kwargs(args),
        )
    except executor.JournalError as error:
        return _sweep_error(error)
    except executor.ExecutorError as error:
        return _run_interrupted(error, "sweep")
    return _emit_results([result], args)


def _cmd_area(_args):
    from repro.experiments import exp_area

    print(exp_area.format_results(exp_area.run()))
    return 0


def _cmd_calibrate(args):
    from repro.analytic import calibrate_machine, model_path, spec_for
    from repro.gemm.microkernel import kernel_names
    from repro.machines import MachineSpecError, machine_names

    machines = [m for m in args.machines.split(",") if m]
    if not machines:
        machines = machine_names()
    for machine in machines:
        if _unknown_machine(machine):
            return 2
    methods = [m for m in args.methods.split(",") if m] or None
    for method in methods or ():
        if method not in kernel_names():
            print(
                "calibrate error: unknown method %r; available: %s"
                % (method, ", ".join(kernel_names())),
                file=sys.stderr,
            )
            return 2
    for machine in machines:
        spec = spec_for(machine)

        def on_method(method, model):
            contention = model.contention
            print(
                "  %-14s call residual %.4f | contention kappa=%.3f "
                "alpha=%.1f (%d probes, residual %.4f)"
                % (method,
                   max(model.first_call.max_rel_residual,
                       model.steady_call.max_rel_residual),
                   contention.kappa, contention.alpha, contention.probes,
                   contention.max_rel_residual)
            )

        print("calibrating %s (%d cores)..." % (spec.name, spec.cores))
        try:
            calibrate_machine(
                spec, methods=methods, jobs=args.jobs,
                multicore=not args.no_multicore, on_method=on_method,
            )
        except MachineSpecError as error:
            print("calibrate error: %s" % error, file=sys.stderr)
            return 2
        print("wrote %s" % model_path(spec))
    return 0


def _cmd_bench_analytic(args):
    from repro.experiments import bench_analytic

    payload = bench_analytic.run_bench(fast=not args.full, jobs=args.jobs)
    accuracy = payload["accuracy"]
    print(
        "model accuracy (%d points): p95 %.2f%% | max %.2f%% | band "
        "p95<=%.0f%% cap %.0f%% | within band: %s"
        % (payload["grid"]["points"], 100 * accuracy["p95_rel_error"],
           100 * accuracy["max_rel_error"], 100 * accuracy["p95_band"],
           100 * accuracy["point_cap"], accuracy["within_band"])
    )
    predict = payload["predict"]
    print(
        "cold calibration: %.3fs (%d pairs) | warm predict %.4gs/shape vs "
        "cold simulate %.4gs/shape (%.0fx)"
        % (payload["calibrate_s"], len(payload["grid"]["pairs"]),
           predict["model_per_shape_s"], predict["sim_per_shape_s"],
           predict["speedup"])
    )
    if args.out:
        path = bench_analytic.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_analytic.check_regression(
            payload, baseline,
            min_predict_speedup=args.min_predict_speedup,
        )
        for problem in problems:
            print("ANALYTIC GATE: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("analytic gate passed (accuracy within band, predictions "
              ">= %.0fx faster than simulation)" % args.min_predict_speedup)
    return 0


def _cmd_bench(args):
    from repro.experiments import bench_pipeline

    payload = bench_pipeline.run_bench(
        repeats=args.repeats, fast=args.fast, jobs=args.jobs
    )
    for name, entry in payload["engine_comparison"].items():
        print(
            "%-6s scalar best %.3fs | batch best %.3fs | speedup %.2fx "
            "(median %.2fx) | records identical: %s"
            % (name, entry["scalar"]["best_s"], entry["batch"]["best_s"],
               entry["speedup_best"], entry["speedup_median"],
               entry["records_identical"])
        )
    suite = payload["fast_suite"]
    print("fast suite: cold %.3fs, warm %.3fs (%d cache hits)"
          % (suite["cold_s"], suite["warm_s"], suite["warm_cache_hits"]))
    trace = payload["trace_cache"]
    print("trace cache: cold compile %.3fs, warm load %.3fs (%.1fx, "
          "%d instructions) | traces identical: %s"
          % (trace["cold_s"], trace["warm_s"], trace["speedup_best"],
             trace["instructions"], trace["identical"]))
    if args.out:
        path = bench_pipeline.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_pipeline.check_regression(
            payload, baseline, max_warm_ratio=args.max_warm_regression,
            min_compile_speedup=args.min_compile_speedup,
        )
        for problem in problems:
            print("PERF REGRESSION: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("perf gate passed (warm rerun within %.1fx of baseline, "
              "trace cache >= %.1fx)"
              % (args.max_warm_regression, args.min_compile_speedup))
    return 0


def _cmd_bench_multicore(args):
    from repro.experiments import bench_multicore

    payload = bench_multicore.run_bench(repeats=args.repeats)
    scaling = payload["scaling"]
    print(
        "multi-core point (%s, %d^3, %d cores): best %.3fs | median %.3fs | "
        "deterministic: %s"
        % (scaling["point"]["method"], scaling["point"]["size"],
           scaling["point"]["cores"], scaling["best_s"], scaling["median_s"],
           scaling["deterministic"])
    )
    print("fast multicore ablation: cold %.3fs"
          % payload["ablation_fast"]["cold_s"])
    if args.out:
        path = bench_multicore.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_multicore.check_regression(
            payload, baseline, max_ratio=args.max_regression
        )
        for problem in problems:
            print("PERF REGRESSION: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("multi-core perf gate passed (within %.1fx of baseline)"
              % args.max_regression)
    return 0


def _cmd_bench_sweep(args):
    from repro.experiments import bench_sweep

    grid = {}
    try:
        if args.sizes:
            grid["sizes"] = tuple(_parse_int_list(args.sizes))
        if args.cores:
            grid["core_counts"] = tuple(_parse_int_list(args.cores))
    except ValueError as error:
        print("bad bench grid: %s" % error, file=sys.stderr)
        return 2
    if args.methods:
        grid["methods"] = tuple(m for m in args.methods.split(",") if m)
    payload = bench_sweep.run_bench(repeats=args.repeats, grid=grid or None)
    print(
        "sweep bench (%d points): cold %.3fs | warm %.3fs (%.1fx) | "
        "resumed %.3fs (recomputed %d, replayed %d) | identical: %s"
        % (payload["points_total"], payload["cold_s"], payload["warm_s"],
           payload["warm_speedup"], payload["resume_s"],
           payload["resume_recomputed"], payload["resume_replayed"],
           payload["warm_identical"] and payload["resume_identical"])
    )
    trace = payload["trace_cache"]
    print("trace cache: cold compile %.3fs, warm load %.3fs (%.1fx, "
          "%d instructions) | traces identical: %s"
          % (trace["cold_s"], trace["warm_s"], trace["speedup_best"],
             trace["instructions"], trace["identical"]))
    if args.out:
        path = bench_sweep.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_sweep.check_regression(
            payload, baseline, min_warm_speedup=args.min_warm_speedup,
            min_compile_speedup=args.min_compile_speedup,
        )
        for problem in problems:
            print("PERF REGRESSION: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("sweep perf gate passed (warm >= %.1fx faster, resume exact, "
              "trace cache >= %.1fx)"
              % (args.min_warm_speedup, args.min_compile_speedup))
    return 0


def _add_cores_option(parser):
    parser.add_argument(
        "--cores", default="",
        help="simulated core counts for the multi-core subsystem, "
             "e.g. 1,4,16 (multi-core experiments and sweep only)")


def _add_machine_file_option(parser):
    parser.add_argument(
        "--machine-file", action="append", metavar="PATH",
        help="load a TOML/JSON machine description into the registry "
             "(repeatable; also honoured process-wide via "
             "$REPRO_MACHINE_PATH)")


def _add_backend_option(parser):
    parser.add_argument(
        "--backend", choices=("simulate", "analytic"), default="simulate",
        help="cycle-level simulation (default) or the calibrated O(1) "
             "analytic model (see `repro-camp calibrate`)")


def _add_machine_option(parser):
    parser.add_argument(
        "--machine",
        help="registered machine to run on (machine-parametric "
             "experiments only; see `repro-camp list`)")


def _add_orchestrator_options(parser):
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for cache misses")
    _add_executor_options(parser)
    _add_output_options(parser)


def _add_executor_options(parser):
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry each failed point up to N times "
                             "(exponential backoff)")
    parser.add_argument("--task-timeout", type=float, metavar="SECONDS",
                        help="kill and retry any point running longer than "
                             "this (forces process workers)")
    parser.add_argument("--run-id", metavar="NAME",
                        help="journal this run under NAME so it can be "
                             "resumed after an interruption")
    parser.add_argument("--resume", metavar="RUN_ID",
                        help="resume a journaled run: completed points are "
                             "replayed, only the rest are computed "
                             "(see `repro-camp experiment runs`)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-point progress lines to stderr "
                             "(automatic on a terminal)")


def _add_output_options(parser):
    parser.add_argument("--out", metavar="DIR",
                        help="write JSON/CSV artifacts into DIR")
    parser.add_argument("--format", choices=("text", "json", "csv"),
                        default="text", help="stdout rendering")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="result cache root (default ~/.cache/repro-camp)")
    _add_engine_option(parser)


def _add_engine_option(parser):
    parser.add_argument("--engine", choices=("batch", "scalar"),
                        help="pipeline engine (default: batch; both are "
                             "bit-identical, scalar is the reference loop)")
    parser.add_argument("--no-trace-cache", action="store_true",
                        help="bypass the persistent compiled-trace cache "
                             "(results are bit-identical either way; also "
                             "honoured via $REPRO_NO_TRACE_CACHE)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-camp",
        description="CAMP (MICRO 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list kernels, machines and experiments")
    _add_machine_file_option(list_parser)

    gemm_parser = sub.add_parser("gemm", help="analyze (or run) one GEMM")
    gemm_parser.add_argument("m", type=int)
    gemm_parser.add_argument("n", type=int)
    gemm_parser.add_argument("k", type=int)
    gemm_parser.add_argument("--method", default="camp8")
    gemm_parser.add_argument("--machine", default="a64fx")
    gemm_parser.add_argument("--verify", action="store_true",
                             help="also compute numerically on random data")
    gemm_parser.add_argument("--seed", type=int, default=0)
    _add_backend_option(gemm_parser)
    _add_machine_file_option(gemm_parser)
    _add_engine_option(gemm_parser)

    exp_parser = sub.add_parser("experiment", help="run a paper experiment")
    exp_parser.add_argument(
        "name",
        help="experiment name, 'all', or 'runs' to list resumable journals")
    exp_parser.add_argument("--fast", action="store_true")
    exp_parser.add_argument(
        "--prune-days", type=float, metavar="DAYS",
        help="with `experiment runs`: delete journals older than DAYS")
    _add_cores_option(exp_parser)
    _add_machine_option(exp_parser)
    _add_machine_file_option(exp_parser)
    _add_orchestrator_options(exp_parser)

    abl_parser = sub.add_parser("ablation", help="run a design-choice study")
    abl_parser.add_argument("name")
    abl_parser.add_argument("--fast", action="store_true")
    _add_cores_option(abl_parser)
    _add_machine_option(abl_parser)
    _add_machine_file_option(abl_parser)
    _add_orchestrator_options(abl_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="shapes x methods x machines speedup sweep")
    sweep_parser.add_argument("--sizes", default="",
                              help="square SMM sides, e.g. 128,256,512")
    sweep_parser.add_argument("--shapes", default="",
                              help="explicit GEMM shapes, e.g. 169x256x3456")
    sweep_parser.add_argument("--methods", default="camp8,camp4")
    sweep_parser.add_argument("--machines", default="a64fx")
    sweep_parser.add_argument("--baseline",
                              help="override the per-machine baseline method")
    _add_machine_file_option(sweep_parser)
    _add_cores_option(sweep_parser)
    sweep_parser.add_argument(
        "--strategy", choices=("npanel", "tile2d"), default="npanel",
        help="GEMM partition strategy for --cores runs")
    _add_backend_option(sweep_parser)
    _add_orchestrator_options(sweep_parser)

    sub.add_parser("area", help="print the physical-design report")

    cal_parser = sub.add_parser(
        "calibrate",
        help="fit (and persist) analytic-model coefficients against the "
             "simulator")
    cal_parser.add_argument(
        "--machines", default="",
        help="comma-separated machines to calibrate (default: all "
             "registered)")
    cal_parser.add_argument(
        "--methods", default="",
        help="methods to calibrate (default: each machine's sweep set)")
    cal_parser.add_argument(
        "--jobs", type=int, default=1,
        help="fan methods across worker processes (coefficients are "
             "independent of --jobs)")
    cal_parser.add_argument(
        "--no-multicore", action="store_true",
        help="skip the multicore contention probes (single-core "
             "coefficients only)")
    _add_machine_file_option(cal_parser)
    _add_engine_option(cal_parser)

    cache_parser = sub.add_parser(
        "cache", help="inspect or prune the on-disk result cache")
    cache_parser.add_argument("action", choices=("stats", "prune"))
    cache_parser.add_argument("--max-age-days", type=float, metavar="DAYS",
                              help="prune: delete entries older than DAYS")
    cache_parser.add_argument("--max-size-mb", type=float, metavar="MB",
                              help="prune: evict oldest entries until the "
                                   "store fits in MB")
    cache_parser.add_argument("--cache-dir", metavar="DIR",
                              help="cache root (default ~/.cache/repro-camp)")

    bench_parser = sub.add_parser(
        "bench-pipeline",
        help="benchmark the pipeline engines, write BENCH_pipeline.json")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="cold runs per engine per experiment")
    bench_parser.add_argument("--fast", action="store_true",
                              help="use the experiments' fast variants")
    bench_parser.add_argument("--jobs", type=int, default=1,
                              help="workers for the orchestrated suite pass")
    bench_parser.add_argument("--out", default="BENCH_pipeline.json",
                              help="output JSON path ('' to skip writing)")
    bench_parser.add_argument("--check", metavar="BASELINE",
                              help="compare against a committed baseline JSON "
                                   "and fail on perf regression")
    bench_parser.add_argument("--max-warm-regression", type=float, default=3.0,
                              help="allowed warm-rerun slowdown vs baseline")
    bench_parser.add_argument("--min-compile-speedup", type=float, default=2.0,
                              help="required cold-compile/warm-load ratio for "
                                   "the compiled-trace cache")

    bench_mc = sub.add_parser(
        "bench-multicore",
        help="benchmark the multi-core subsystem, write BENCH_multicore.json")
    bench_mc.add_argument("--repeats", type=int, default=3,
                          help="cold runs of the scaling point (min 2)")
    bench_mc.add_argument("--out", default="BENCH_multicore.json",
                          help="output JSON path ('' to skip writing)")
    bench_mc.add_argument("--check", metavar="BASELINE",
                          help="compare against a committed baseline JSON "
                               "and fail on perf regression")
    bench_mc.add_argument("--max-regression", type=float, default=3.0,
                          help="allowed cold-run slowdown vs baseline")

    bench_sw = sub.add_parser(
        "bench-sweep",
        help="benchmark cold vs warm vs resumed sweeps, write "
             "BENCH_sweep.json")
    bench_sw.add_argument("--repeats", type=int, default=1,
                          help="cold sweeps to time (best is kept)")
    bench_sw.add_argument("--sizes", default="",
                          help="override the benchmark grid's square sizes")
    bench_sw.add_argument("--methods", default="",
                          help="override the benchmark grid's methods")
    bench_sw.add_argument("--cores", default="",
                          help="override the benchmark grid's core counts")
    bench_sw.add_argument("--out", default="BENCH_sweep.json",
                          help="output JSON path ('' to skip writing)")
    bench_sw.add_argument("--check", metavar="BASELINE",
                          help="compare against a committed baseline JSON "
                               "and fail on perf regression")
    bench_sw.add_argument("--min-warm-speedup", type=float, default=5.0,
                          help="required cold/warm wall-time ratio")
    bench_sw.add_argument("--min-compile-speedup", type=float, default=2.0,
                          help="required cold-compile/warm-load ratio for "
                               "the compiled-trace cache")

    bench_an = sub.add_parser(
        "bench-analytic",
        help="measure analytic-model accuracy and speed, write "
             "BENCH_analytic.json")
    bench_an.add_argument("--full", action="store_true",
                          help="run the full accuracy grid (nightly) "
                               "instead of the fast one")
    bench_an.add_argument("--jobs", type=int, default=1,
                          help="worker processes for calibration")
    bench_an.add_argument("--out", default="BENCH_analytic.json",
                          help="output JSON path ('' to skip writing)")
    bench_an.add_argument("--check", metavar="BASELINE",
                          help="compare against a committed baseline JSON "
                               "and fail when the accuracy band or the "
                               "prediction-speedup floor is violated")
    bench_an.add_argument("--min-predict-speedup", type=float, default=100.0,
                          help="required warm-prediction vs cold-simulation "
                               "per-shape speedup")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "gemm": _cmd_gemm,
    "experiment": _cmd_experiment,
    "ablation": _cmd_ablation,
    "sweep": _cmd_sweep,
    "area": _cmd_area,
    "calibrate": _cmd_calibrate,
    "cache": _cmd_cache,
    "bench-pipeline": _cmd_bench,
    "bench-multicore": _cmd_bench_multicore,
    "bench-sweep": _cmd_bench_sweep,
    "bench-analytic": _cmd_bench_analytic,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    _apply_engine(args)
    code = _apply_machine_files(args)
    if code:
        return code
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
