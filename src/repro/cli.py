"""Command-line interface.

::

    python -m repro.cli list                      # kernels + experiments
    python -m repro.cli gemm 512 512 512 --method camp8
    python -m repro.cli experiment table1 [--fast]
    python -m repro.cli experiment all --fast --jobs 4 --out artifacts/
    python -m repro.cli ablation vector-length
    python -m repro.cli sweep --sizes 128,256 --methods camp8,camp4
    python -m repro.cli serve --port 8735
    python -m repro.cli area

``gemm``, ``sweep`` and ``calibrate`` are thin shells around the typed
request layer (:mod:`repro.serving.requests`): their option groups are
*derived* from the request dataclasses (adding a field there surfaces
it here and on the daemon's JSON schema automatically), validation is
the requests' own ``validate()``, and execution goes through
:mod:`repro.serving.execute` — the same code path the ``serve`` daemon
answers with, so ``--server URL`` (send the request to a running
``repro-camp serve`` instead of executing locally) returns
byte-identical results.

Experiments and ablations run through the orchestrator
(:mod:`repro.experiments.orchestrator`):

- ``--jobs N`` fans independent experiments across a process pool.
- Results are cached on disk (``$REPRO_CACHE_DIR``, default
  ``~/.cache/repro-camp``), keyed by experiment name, fast flag, a
  digest of every ``src/repro`` source file and a digest of the run
  parameters — so a warm rerun is near-instant, and any code or
  parameter change recomputes exactly what it invalidates. Disable
  with ``--no-cache``; point elsewhere with ``--cache-dir``.
- ``--out DIR`` writes machine-readable artifacts per experiment
  (``<name>.json`` + ``<name>.csv`` + ``manifest.json``; schema in
  :mod:`repro.experiments.artifacts`).
- ``--format text|json|csv`` selects the stdout rendering.

Sweeps (and experiment batches) decompose into per-point tasks on the
work-queue executor: ``--retries`` / ``--task-timeout`` apply per
point, ``--run-id NAME`` journals progress so an interrupted run (exit
code 3) continues with ``--resume NAME`` recomputing only unfinished
points, ``experiment runs`` lists resumable journals, and ``cache
stats`` / ``cache prune`` keep the result store bounded.

Machines resolve through the declarative registry
(:mod:`repro.machines`): ``list``'s machine line, every ``--machine`` /
``--machines`` validation, and the per-platform sweep baselines all
derive from registered specs. ``--machine-file PATH`` (or
``$REPRO_MACHINE_PATH``) loads user-defined TOML/JSON machine
descriptions; the registry digest joins the result-cache key, so an
edited machine file never serves stale cached records.

Exit codes: 0 success, 1 operational failure (perf gate, unreachable
server), 2 invalid request/usage, 3 interrupted run (resumable).
"""

import argparse
import contextlib
import json
import os
import sys
import time

from repro.serving.requests import (
    CalibrateRequest,
    GemmRequest,
    SweepRequest,
    add_request_options,
    int_list,
    request_from_args,
)


def _apply_engine(args):
    """Install the requested pipeline engine process-wide.

    Exported through the environment as well so orchestrator worker
    processes inherit the choice.
    """
    engine = getattr(args, "engine", None)
    if engine:
        from repro.simulator.engine import set_default_engine

        os.environ["REPRO_PIPELINE_ENGINE"] = engine
        set_default_engine(engine)
    if getattr(args, "no_trace_cache", False):
        # env-only: the trace cache re-reads the variable on every
        # lookup, and worker processes inherit the environment
        from repro.simulator.engine import TRACE_CACHE_ENV

        os.environ[TRACE_CACHE_ENV] = "1"


def _apply_machine_files(args):
    """Load every ``--machine-file`` into the process-wide registry.

    Also appended to ``$REPRO_MACHINE_PATH`` so any spawned worker
    process resolves the same registry regardless of start method.
    """
    paths = getattr(args, "machine_file", None) or []
    if not paths:
        return 0
    from repro.machines import (
        MACHINE_PATH_ENV,
        MachineSpecError,
        load_machine_file,
    )

    for path in paths:
        try:
            load_machine_file(path)
        except MachineSpecError as error:
            print("machine file error: %s" % error, file=sys.stderr)
            return 2
    existing = os.environ.get(MACHINE_PATH_ENV, "")
    entries = [e for e in existing.split(os.pathsep) if e]
    entries += [p for p in paths if p not in entries]
    os.environ[MACHINE_PATH_ENV] = os.pathsep.join(entries)
    return 0


def _request_errors():
    """Exception types meaning "invalid request" (exit code 2).

    One tuple for every door: the request layer's own errors and the
    machine layer's spec violations, raised identically by local
    execution and re-raised by the client from the daemon's structured
    4xx payloads.
    """
    from repro.machines import MachineSpecError
    from repro.serving.requests import RequestError

    return (RequestError, MachineSpecError)


def _server_errors():
    from repro.serving.client import ServerError

    return (ServerError,)


def _fail(command, error):
    print("%s error: %s" % (command, error), file=sys.stderr)
    return 2


def _server_fail(error):
    print("server error: %s" % error, file=sys.stderr)
    return 1


def _cmd_list(_args):
    from repro.experiments import orchestrator
    from repro.gemm.microkernel import kernel_names
    from repro.machines import machine_names

    print("kernels     :", ", ".join(kernel_names()))
    print("machines    :", ", ".join(machine_names()))
    print("experiments :", ", ".join(sorted(orchestrator.names("experiment"))))
    print("ablations   :", ", ".join(sorted(orchestrator.names("ablation"))))
    return 0


def _unknown_machine(name):
    from repro.serving.requests import RequestError, check_machine

    try:
        check_machine(name)
    except RequestError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _render_gemm(result):
    """Print the gemm summary from a response's result dict.

    Local and served executions both land here with the same dict, so
    the rendering cannot diverge between them.
    """
    backend_note = (
        " (analytic model)" if result["backend"] == "analytic" else ""
    )
    print("method        : %s on %s%s" % (result["kernel_name"],
                                          result["machine"], backend_note))
    print("cycles        : %.4g" % result["cycles"])
    print("instructions  : %d (kernel %d + packing %d)" % (
        result["total_instructions"], result["kernel_instructions"],
        result["packing_instructions"]))
    print("cycles/MAC    : %.4f" % result["cycles_per_mac"])
    print("throughput    : %.1f GOPS @ %.1f GHz" % (
        result["gops"], result["frequency_ghz"]))
    if result.get("blocking"):
        blocking = result["blocking"]
        print("blocking      : mc=%d kc=%d nc=%d (m_r=%d n_r=%d)" % (
            blocking["mc"], blocking["kc"], blocking["nc"],
            blocking["m_r"], blocking["n_r"]))
    return 0


@contextlib.contextmanager
def _profiled(args):
    """``--profile``: collect per-phase engine wall times, print a report.

    The collector is process-global (see
    :mod:`repro.simulator.profiling`), so with ``--jobs`` > 1 pool
    workers profile into their own processes and only parent-side time
    shows up — the report says so rather than silently under-counting.
    """
    if not getattr(args, "profile", False):
        yield
        return
    from repro.simulator import profiling

    with profiling.profile():
        yield
    print(profiling.render())
    if getattr(args, "jobs", 1) > 1:
        print("(jobs > 1: pool workers profile separately; rerun with "
              "--jobs 1 for full coverage)")


def _cmd_gemm(args):
    from repro.serving import execute as serving_execute

    if getattr(args, "profile", False) and args.server:
        return _fail("gemm", "--profile measures the local engines; drop "
                             "--server")
    try:
        request = request_from_args(GemmRequest, args).validate()
    except _request_errors() as error:
        return _fail("gemm", error)
    with _profiled(args):
        return _gemm_body(args, request, serving_execute)


def _gemm_body(args, request, serving_execute):
    if args.verify:
        if args.server:
            return _fail("gemm", "--verify computes numerically and runs "
                                 "locally; drop --server")
        if request.backend == "analytic":
            return _fail("gemm", "--verify needs the numeric path; drop "
                                 "--backend analytic")
        import numpy as np

        from repro.gemm.api import gemm

        rng = np.random.default_rng(args.seed)
        bits = 4 if request.method == "camp4" else 8
        lo, hi = -(1 << (bits - 1)), 1 << (bits - 1)
        if request.method == "openblas-fp32":
            a = rng.normal(size=(request.m, request.k)).astype(np.float32)
            b = rng.normal(size=(request.k, request.n)).astype(np.float32)
        else:
            a = rng.integers(lo, hi, size=(request.m, request.k))
            a = a.astype(np.int8)
            b = rng.integers(lo, hi, size=(request.k, request.n))
            b = b.astype(np.int8)
        numeric = gemm(a, b, method=request.method, machine=request.machine)
        print("numeric verification: computed %dx%d result"
              % numeric.c.shape)
        result = serving_execute.execution_result(request, numeric.execution)
    elif args.server:
        from repro.serving.client import ServerClient

        try:
            result = ServerClient(args.server).gemm(request)["result"]
        except _request_errors() as error:
            return _fail("gemm", error)
        except _server_errors() as error:
            return _server_fail(error)
    else:
        try:
            result = serving_execute.gemm_response(request)["result"]
        except _request_errors() as error:
            return _fail("gemm", error)
    return _render_gemm(result)


def _cache_from_args(args):
    from repro.experiments.cache import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(getattr(args, "cache_dir", None))


def _progress_printer(args):
    """Per-point progress lines for long sweeps (stderr).

    Enabled by ``--progress``, or automatically when stderr is a
    terminal — an hour-long grid should not look hung. Served sweeps
    stream the same callbacks over the wire.
    """
    enabled = getattr(args, "progress", False) or (
        hasattr(sys.stderr, "isatty") and sys.stderr.isatty()
    )
    if not enabled:
        return None

    def on_point(done, total, point_id, status, elapsed_s):
        detail = status if status != "computed" else "%.2fs" % elapsed_s
        print("[%d/%d] %s (%s)" % (done, total, point_id, detail),
              file=sys.stderr)

    return on_point


def _executor_kwargs(args):
    """``run_many``/``run_sweep`` kwargs from the executor CLI options."""
    return {
        "retries": getattr(args, "retries", 0),
        "task_timeout": getattr(args, "task_timeout", None),
        "run_id": getattr(args, "run_id", None),
        "resume": getattr(args, "resume", None),
        "on_point": _progress_printer(args),
    }


def _run_interrupted(error, command):
    """Report an interrupted/failed executor run with the resume hint."""
    from repro.experiments import executor

    interrupted = isinstance(error, executor.InterruptedRun)
    print("%s %s: %s" % (command,
                         "interrupted" if interrupted else "failed", error),
          file=sys.stderr)
    if error.run_id:
        print("resume with: --resume %s" % error.run_id, file=sys.stderr)
    return 3 if interrupted else 1


def _cmd_runs(args):
    """List (and optionally prune) the journals under the cache dir."""
    from repro.experiments import executor

    if getattr(args, "prune_days", None) is not None:
        removed = executor.prune_runs(args.prune_days)
        print("pruned %d journal%s%s"
              % (len(removed), "" if len(removed) == 1 else "s",
                 (": " + ", ".join(removed)) if removed else ""))
        return 0
    runs = executor.list_runs()
    if not runs:
        print("no recorded runs under %s" % executor.journals_dir())
        return 0
    print("%-34s %-18s %-20s %7s %s"
          % ("run id", "experiment", "created", "points", "state"))
    for entry in runs:
        created = "?"
        if entry["created_unix"]:
            created = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(entry["created_unix"])
            )
        print("%-34s %-18s %-20s %7d %s"
              % (entry["run_id"], entry["experiment"], created,
                 entry["points"],
                 "done" if entry["done"] else "resumable"))
    return 0


def _print_tier_stats(stats):
    print("cache root   : %s" % stats["root"])
    print("entries      : %d" % stats["entries"])
    print("total size   : %.2f MB" % (stats["total_bytes"] / 1e6))
    if stats["oldest_age_s"] is not None:
        print("oldest entry : %.1f days" % (stats["oldest_age_s"] / 86400))
        print("newest entry : %.1f days" % (stats["newest_age_s"] / 86400))


def _cmd_cache(args):
    """Cache maintenance over both tiers: ``cache stats`` / ``cache prune``.

    The result tier holds experiment records (JSON), the trace tier
    holds the batch engine's persisted compiled traces (``.rptc``);
    both live under the same root and are inspected/pruned together.
    """
    from repro.experiments.cache import ResultCache
    from repro.simulator import trace_cache

    cache_dir = getattr(args, "cache_dir", None)
    cache = ResultCache(cache_dir)
    if args.action == "stats":
        print("result tier")
        _print_tier_stats(cache.disk_stats())
        print()
        print("compiled-trace tier")
        _print_tier_stats(trace_cache.disk_stats(cache_dir))
        return 0
    # prune
    if args.max_age_days is None and args.max_size_mb is None:
        print("cache prune needs --max-age-days and/or --max-size-mb",
              file=sys.stderr)
        return 2
    removed, freed = cache.prune(
        max_age_days=args.max_age_days, max_size_mb=args.max_size_mb
    )
    trace_removed, trace_freed = trace_cache.prune(
        max_age_days=args.max_age_days, max_size_mb=args.max_size_mb,
        base=cache_dir,
    )
    print("pruned %d result entr%s (%.2f MB freed), %d compiled-trace "
          "entr%s (%.2f MB freed)"
          % (removed, "y" if removed == 1 else "ies", freed / 1e6,
             trace_removed, "y" if trace_removed == 1 else "ies",
             trace_freed / 1e6))
    return 0


def _emit_results(results, args, jobs=1):
    """Render results to stdout per --format and write --out artifacts."""
    from repro.experiments import artifacts

    out_format = getattr(args, "format", "text")
    if out_format == "text":
        for result in results:
            print(result.text)
            print()
    elif out_format == "json":
        documents = [artifacts.result_document(r) for r in results]
        print(json.dumps(documents, sort_keys=True, indent=2))
    else:  # csv
        for result in results:
            print("# %s" % result.name)
            print(artifacts.csv_text(result.records), end="")
    if getattr(args, "out", None):
        artifacts.write_batch(args.out, results, jobs=jobs)
    return 0


def _run_registered(kind, args):
    from repro.experiments import executor, orchestrator

    if kind == "experiment" and args.name == "runs":
        return _cmd_runs(args)
    known = orchestrator.names(kind)
    if args.name == "all":
        requested = known
    elif args.name not in known:
        print("unknown %s %r; try: %s"
              % (kind, args.name, ", ".join(sorted(known)) + ", all"),
              file=sys.stderr)
        return 2
    else:
        requested = [args.name]
    run_kwargs = {}
    if getattr(args, "cores", None):
        try:
            core_counts = list(int_list(args.cores))
        except ValueError as error:
            print("bad --cores: %s" % error, file=sys.stderr)
            return 2
        if not core_counts or any(cores < 1 for cores in core_counts):
            print("bad --cores: core counts must be >= 1", file=sys.stderr)
            return 2
        unsupported = [
            name for name in requested if name not in orchestrator.CORES_AWARE
        ]
        if unsupported:
            print(
                "--cores only applies to the multi-core experiments (%s), "
                "not: %s" % (
                    ", ".join(sorted(orchestrator.CORES_AWARE)),
                    ", ".join(unsupported),
                ),
                file=sys.stderr,
            )
            return 2
        run_kwargs = {"cores": core_counts, "jobs": args.jobs}
    if getattr(args, "machine", None):
        if _unknown_machine(args.machine):
            return 2
        unsupported = [
            name for name in requested
            if name not in orchestrator.MACHINE_AWARE
        ]
        if unsupported:
            print(
                "--machine only applies to the machine-parametric "
                "experiments (%s); the paper figures are platform-pinned, "
                "not: %s" % (
                    ", ".join(sorted(orchestrator.MACHINE_AWARE)),
                    ", ".join(unsupported),
                ),
                file=sys.stderr,
            )
            return 2
        run_kwargs["machine"] = args.machine
    try:
        results = orchestrator.run_many(
            requested, fast=args.fast, jobs=args.jobs,
            cache=_cache_from_args(args), run_kwargs=run_kwargs,
            **_executor_kwargs(args),
        )
    except executor.JournalError as error:
        print("%s error: %s" % (kind, error), file=sys.stderr)
        return 2
    except executor.ExecutorError as error:
        return _run_interrupted(error, kind)
    return _emit_results(results, args, jobs=args.jobs)


def _cmd_experiment(args):
    with _profiled(args):
        return _run_registered("experiment", args)


def _cmd_ablation(args):
    return _run_registered("ablation", args)


def _sweep_result(result):
    """Reassemble an :class:`ExperimentResult` from a response dict.

    Shared by the local and served paths, so ``--format json`` output
    (which excludes timing) is identical either way.
    """
    from repro.experiments.orchestrator import ExperimentResult

    return ExperimentResult(
        name="sweep",
        kind="sweep",
        fast=False,
        records=result["records"],
        text=result["text"],
        from_cache=result["from_cache"],
        elapsed_s=0.0,
        run_id=result["run_id"],
    )


def _cmd_sweep(args):
    from repro.experiments import executor
    from repro.serving import execute as serving_execute

    try:
        request = request_from_args(SweepRequest, args).validate()
    except _request_errors() as error:
        return _fail("sweep", error)
    try:
        if args.server:
            from repro.serving.client import ServerClient

            response = ServerClient(args.server).sweep(
                request, on_point=_progress_printer(args)
            )
        else:
            response = serving_execute.sweep_response(
                request, cache=_cache_from_args(args), jobs=args.jobs,
                **_executor_kwargs(args),
            )
    except _request_errors() as error:
        return _fail("sweep", error)
    except _server_errors() as error:
        return _server_fail(error)
    except executor.JournalError as error:
        return _fail("sweep", error)
    except executor.ExecutorError as error:
        return _run_interrupted(error, "sweep")
    return _emit_results([_sweep_result(response["result"])], args)


def _cmd_area(_args):
    from repro.experiments import exp_area

    print(exp_area.format_results(exp_area.run()))
    return 0


def _cmd_calibrate(args):
    from repro.serving import execute as serving_execute

    try:
        request = request_from_args(
            CalibrateRequest, args, multicore=not args.no_multicore
        ).validate()
    except _request_errors() as error:
        return _fail("calibrate", error)

    def on_machine(spec):
        print("calibrating %s (%d cores)..." % (spec.name, spec.cores))

    def on_method(machine, method, model):
        contention = model.contention
        print(
            "  %-14s call residual %.4f | contention kappa=%.3f "
            "alpha=%.1f (%d probes, residual %.4f)"
            % (method,
               max(model.first_call.max_rel_residual,
                   model.steady_call.max_rel_residual),
               contention.kappa, contention.alpha, contention.probes,
               contention.max_rel_residual)
        )

    def on_machine_done(entry):
        print("wrote %s" % entry["path"])

    try:
        serving_execute.calibrate_response(
            request, jobs=args.jobs, on_method=on_method,
            on_machine=on_machine, on_machine_done=on_machine_done,
        )
    except _request_errors() as error:
        return _fail("calibrate", error)
    return 0


def _cmd_serve(args):
    import signal
    import threading

    from repro.serving.requests import SCHEMA_VERSION
    from repro.serving.server import create_server
    from repro.simulator.engine import get_default_engine

    server = create_server(
        host=args.host, port=args.port, cache_dir=args.cache_dir,
        jobs=args.jobs, warm=not args.no_warm, verbose=args.verbose,
    )
    service = server.service
    host, port = server.server_address[:2]
    print(
        "repro-camp serve: listening on http://%s:%d (schema v%d, "
        "engine %s, %d analytic models warm, warm-up %.2fs)"
        % (host, port, SCHEMA_VERSION, get_default_engine(),
           service.preloaded_models, service.warm_up_s or 0.0),
        flush=True,
    )

    def _stop(_signum, _frame):
        # serve_forever must not be shut down from the signal handler's
        # own (main) thread — shutdown() joins the serving loop
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    except ValueError:
        pass  # not on the main thread (in-process test harness)
    try:
        server.serve_forever()
    finally:
        server.server_close()
    counters = service.counters
    print("repro-camp serve: shut down cleanly (%d requests, %d computes, "
          "%d coalesced)"
          % (counters["requests"], counters["computes"],
             counters["dedup_hits"] + counters["memo_hits"]),
        flush=True,
    )
    return 0


def _cmd_bench_analytic(args):
    from repro.experiments import bench_analytic

    payload = bench_analytic.run_bench(fast=not args.full, jobs=args.jobs)
    accuracy = payload["accuracy"]
    print(
        "model accuracy (%d points): p95 %.2f%% | max %.2f%% | band "
        "p95<=%.0f%% cap %.0f%% | within band: %s"
        % (payload["grid"]["points"], 100 * accuracy["p95_rel_error"],
           100 * accuracy["max_rel_error"], 100 * accuracy["p95_band"],
           100 * accuracy["point_cap"], accuracy["within_band"])
    )
    predict = payload["predict"]
    print(
        "cold calibration: %.3fs (%d pairs) | warm predict %.4gs/shape vs "
        "cold simulate %.4gs/shape (%.0fx)"
        % (payload["calibrate_s"], len(payload["grid"]["pairs"]),
           predict["model_per_shape_s"], predict["sim_per_shape_s"],
           predict["speedup"])
    )
    if args.out:
        path = bench_analytic.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_analytic.check_regression(
            payload, baseline,
            min_predict_speedup=args.min_predict_speedup,
        )
        for problem in problems:
            print("ANALYTIC GATE: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("analytic gate passed (accuracy within band, predictions "
              ">= %.0fx faster than simulation)" % args.min_predict_speedup)
    return 0


def _cmd_bench(args):
    from repro.experiments import bench_pipeline

    payload = bench_pipeline.run_bench(
        repeats=args.repeats, fast=args.fast, jobs=args.jobs
    )
    for name, entry in payload["engine_comparison"].items():
        print(
            "%-6s scalar best %.3fs | batch best %.3fs | speedup %.2fx "
            "(median %.2fx) | records identical: %s"
            % (name, entry["scalar"]["best_s"], entry["batch"]["best_s"],
               entry["speedup_best"], entry["speedup_median"],
               entry["records_identical"])
        )
    suite = payload["fast_suite"]
    print("fast suite: cold %.3fs, warm %.3fs (%d cache hits)"
          % (suite["cold_s"], suite["warm_s"], suite["warm_cache_hits"]))
    trace = payload["trace_cache"]
    print("trace cache: cold compile %.3fs, warm load %.3fs (%.1fx, "
          "%d instructions) | traces identical: %s"
          % (trace["cold_s"], trace["warm_s"], trace["speedup_best"],
             trace["instructions"], trace["identical"]))
    fanout = trace.get("worker_fanout")
    if fanout:
        print("worker fan-out: %d points x %d cores (jobs %d) | worker "
              "compiles %d | warm parent compiles %d (disk hits %d)"
              % (fanout["points"], fanout["cores"], fanout["jobs"],
                 fanout["worker_compiles"],
                 fanout["warm"]["parent_compiles"],
                 fanout["warm"]["parent_disk_hits"]))
    if args.out:
        path = bench_pipeline.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_pipeline.check_regression(
            payload, baseline, max_warm_ratio=args.max_warm_regression,
            min_compile_speedup=args.min_compile_speedup,
            min_batch_speedup=args.min_batch_speedup or None,
        )
        for problem in problems:
            print("PERF REGRESSION: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("perf gate passed (warm rerun within %.1fx of baseline, "
              "trace cache >= %.1fx, batch >= %.1fx on %s)"
              % (args.max_warm_regression, args.min_compile_speedup,
                 args.min_batch_speedup,
                 bench_pipeline.ACCEPTANCE_EXPERIMENT))
    return 0


def _cmd_bench_multicore(args):
    from repro.experiments import bench_multicore

    payload = bench_multicore.run_bench(repeats=args.repeats)
    scaling = payload["scaling"]
    print(
        "multi-core point (%s, %d^3, %d cores): best %.3fs | median %.3fs | "
        "deterministic: %s"
        % (scaling["point"]["method"], scaling["point"]["size"],
           scaling["point"]["cores"], scaling["best_s"], scaling["median_s"],
           scaling["deterministic"])
    )
    print("fast multicore ablation: cold %.3fs"
          % payload["ablation_fast"]["cold_s"])
    if args.out:
        path = bench_multicore.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_multicore.check_regression(
            payload, baseline, max_ratio=args.max_regression
        )
        for problem in problems:
            print("PERF REGRESSION: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("multi-core perf gate passed (within %.1fx of baseline)"
              % args.max_regression)
    return 0


def _cmd_bench_sweep(args):
    from repro.experiments import bench_sweep

    grid = {}
    try:
        if args.sizes:
            grid["sizes"] = int_list(args.sizes)
        if args.cores:
            grid["core_counts"] = int_list(args.cores)
    except ValueError as error:
        print("bad bench grid: %s" % error, file=sys.stderr)
        return 2
    if args.methods:
        grid["methods"] = tuple(m for m in args.methods.split(",") if m)
    payload = bench_sweep.run_bench(repeats=args.repeats, grid=grid or None)
    print(
        "sweep bench (%d points): cold %.3fs | warm %.3fs (%.1fx) | "
        "resumed %.3fs (recomputed %d, replayed %d) | identical: %s"
        % (payload["points_total"], payload["cold_s"], payload["warm_s"],
           payload["warm_speedup"], payload["resume_s"],
           payload["resume_recomputed"], payload["resume_replayed"],
           payload["warm_identical"] and payload["resume_identical"])
    )
    trace = payload["trace_cache"]
    print("trace cache: cold compile %.3fs, warm load %.3fs (%.1fx, "
          "%d instructions) | traces identical: %s"
          % (trace["cold_s"], trace["warm_s"], trace["speedup_best"],
             trace["instructions"], trace["identical"]))
    if args.out:
        path = bench_sweep.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_sweep.check_regression(
            payload, baseline, min_warm_speedup=args.min_warm_speedup,
            min_compile_speedup=args.min_compile_speedup,
        )
        for problem in problems:
            print("PERF REGRESSION: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("sweep perf gate passed (warm >= %.1fx faster, resume exact, "
              "trace cache >= %.1fx)"
              % (args.min_warm_speedup, args.min_compile_speedup))
    return 0


def _cmd_bench_serve(args):
    from repro.experiments import bench_serve

    payload = bench_serve.run_bench(
        warm_requests=args.warm_requests, concurrency=args.concurrency,
        cli_repeats=args.repeats,
    )
    warm = payload["warm"]
    print(
        "one-shot CLI %.3fs | daemon cold-start %.3fs, first request %.3fs"
        % (payload["cli_one_shot_s"], payload["cold_start_s"],
           payload["first_request_s"])
    )
    print(
        "warm served (%d requests): p50 %.4gs p99 %.4gs | %.0f req/s | "
        "%.0fx one-shot CLI | byte-identical: %s"
        % (warm["requests"], warm["p50_s"], warm["p99_s"],
           warm["requests_per_s"], warm["speedup_p50"],
           payload["byte_identical"])
    )
    dedup = payload["dedup"]
    print(
        "single-flight: %d concurrent identical sweeps -> %d compute(s), "
        "%d coalesced (hit rate %.2f), %d points computed"
        % (dedup["concurrency"], dedup["computes"],
           dedup["followers"] + dedup["memo_hits"], dedup["hit_rate"],
           dedup["points_computed"])
    )
    if args.out:
        path = bench_serve.write_bench(payload, args.out)
        print("wrote %s" % path)
    if args.check:
        baseline = json.loads(open(args.check).read())
        problems = bench_serve.check_regression(
            payload, baseline, min_warm_speedup=args.min_warm_speedup,
        )
        for problem in problems:
            print("SERVE GATE: %s" % problem, file=sys.stderr)
        if problems:
            return 1
        print("serve gate passed (warm p50 >= %.0fx one-shot CLI, "
              "responses byte-identical, single-flight dedup exact)"
              % args.min_warm_speedup)
    return 0


def _add_machine_file_option(parser):
    parser.add_argument(
        "--machine-file", action="append", metavar="PATH",
        help="load a TOML/JSON machine description into the registry "
             "(repeatable; also honoured process-wide via "
             "$REPRO_MACHINE_PATH)")


def _add_server_option(parser):
    parser.add_argument(
        "--server", metavar="URL",
        help="send the request to a running `repro-camp serve` daemon "
             "instead of executing locally (responses are byte-identical)")


def _add_cores_option(parser):
    parser.add_argument(
        "--cores", default="",
        help="simulated core counts for the multi-core subsystem, "
             "e.g. 1,4,16 (multi-core experiments and sweep only)")


def _add_machine_option(parser):
    parser.add_argument(
        "--machine",
        help="registered machine to run on (machine-parametric "
             "experiments only; see `repro-camp list`)")


def _add_orchestrator_options(parser, engine=True):
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for cache misses")
    _add_executor_options(parser)
    _add_output_options(parser, engine=engine)


def _add_executor_options(parser):
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry each failed point up to N times "
                             "(exponential backoff)")
    parser.add_argument("--task-timeout", type=float, metavar="SECONDS",
                        help="kill and retry any point running longer than "
                             "this (forces process workers)")
    parser.add_argument("--run-id", metavar="NAME",
                        help="journal this run under NAME so it can be "
                             "resumed after an interruption")
    parser.add_argument("--resume", metavar="RUN_ID",
                        help="resume a journaled run: completed points are "
                             "replayed, only the rest are computed "
                             "(see `repro-camp experiment runs`)")
    parser.add_argument("--progress", action="store_true",
                        help="print per-point progress lines to stderr "
                             "(automatic on a terminal)")


def _add_output_options(parser, engine=True):
    parser.add_argument("--out", metavar="DIR",
                        help="write JSON/CSV artifacts into DIR")
    parser.add_argument("--format", choices=("text", "json", "csv"),
                        default="text", help="stdout rendering")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="result cache root (default ~/.cache/repro-camp)")
    if engine:
        _add_engine_option(parser)
    else:
        _add_trace_cache_option(parser)


def _add_engine_option(parser):
    parser.add_argument("--engine", choices=("batch", "scalar"),
                        help="pipeline engine (default: batch; both are "
                             "bit-identical, scalar is the reference loop)")
    _add_trace_cache_option(parser)


def _add_trace_cache_option(parser):
    parser.add_argument("--no-trace-cache", action="store_true",
                        help="bypass the persistent compiled-trace cache "
                             "(results are bit-identical either way; also "
                             "honoured via $REPRO_NO_TRACE_CACHE)")


def _opt(*flags, **kwargs):
    return flags, kwargs


#: the shared bench-* option table: every bench subcommand gets its
#: extra options from here plus the common --out/--check pair, so the
#: five commands stay declaratively in one place
_BENCH_COMMANDS = {
    "bench-pipeline": {
        "help": "benchmark the pipeline engines, write BENCH_pipeline.json",
        "out": "BENCH_pipeline.json",
        "run": _cmd_bench,
        "options": (
            _opt("--repeats", type=int, default=3,
                 help="cold runs per engine per experiment"),
            _opt("--fast", action="store_true",
                 help="use the experiments' fast variants"),
            _opt("--jobs", type=int, default=1,
                 help="workers for the orchestrated suite pass"),
            _opt("--max-warm-regression", type=float, default=3.0,
                 help="allowed warm-rerun slowdown vs baseline"),
            _opt("--min-compile-speedup", type=float, default=2.0,
                 help="required cold-compile/warm-load ratio for the "
                      "compiled-trace cache"),
            _opt("--min-batch-speedup", type=float, default=8.0,
                 help="required batch-vs-scalar median speedup on the "
                      "acceptance experiment (fig17); 0 disables"),
        ),
    },
    "bench-multicore": {
        "help": "benchmark the multi-core subsystem, write "
                "BENCH_multicore.json",
        "out": "BENCH_multicore.json",
        "run": _cmd_bench_multicore,
        "options": (
            _opt("--repeats", type=int, default=3,
                 help="cold runs of the scaling point (min 2)"),
            _opt("--max-regression", type=float, default=3.0,
                 help="allowed cold-run slowdown vs baseline"),
        ),
    },
    "bench-sweep": {
        "help": "benchmark cold vs warm vs resumed sweeps, write "
                "BENCH_sweep.json",
        "out": "BENCH_sweep.json",
        "run": _cmd_bench_sweep,
        "options": (
            _opt("--repeats", type=int, default=1,
                 help="cold sweeps to time (best is kept)"),
            _opt("--sizes", default="",
                 help="override the benchmark grid's square sizes"),
            _opt("--methods", default="",
                 help="override the benchmark grid's methods"),
            _opt("--cores", default="",
                 help="override the benchmark grid's core counts"),
            _opt("--min-warm-speedup", type=float, default=5.0,
                 help="required cold/warm wall-time ratio"),
            _opt("--min-compile-speedup", type=float, default=2.0,
                 help="required cold-compile/warm-load ratio for the "
                      "compiled-trace cache"),
        ),
    },
    "bench-analytic": {
        "help": "measure analytic-model accuracy and speed, write "
                "BENCH_analytic.json",
        "out": "BENCH_analytic.json",
        "run": _cmd_bench_analytic,
        "options": (
            _opt("--full", action="store_true",
                 help="run the full accuracy grid (nightly) instead of "
                      "the fast one"),
            _opt("--jobs", type=int, default=1,
                 help="worker processes for calibration"),
            _opt("--min-predict-speedup", type=float, default=100.0,
                 help="required warm-prediction vs cold-simulation "
                      "per-shape speedup"),
        ),
    },
    "bench-serve": {
        "help": "benchmark the serving daemon vs the one-shot CLI, write "
                "BENCH_serve.json",
        "out": "BENCH_serve.json",
        "run": _cmd_bench_serve,
        "options": (
            _opt("--repeats", type=int, default=3,
                 help="one-shot CLI subprocess runs (best is kept)"),
            _opt("--warm-requests", type=int, default=40,
                 help="warm requests timed for p50/p99"),
            _opt("--concurrency", type=int, default=8,
                 help="threads posting the identical sweep for the "
                      "single-flight check"),
            _opt("--min-warm-speedup", type=float, default=20.0,
                 help="required one-shot-CLI / warm-served-p50 ratio"),
        ),
    },
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-camp",
        description="CAMP (MICRO 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list kernels, machines and experiments")
    _add_machine_file_option(list_parser)

    gemm_parser = sub.add_parser("gemm", help="analyze (or run) one GEMM")
    add_request_options(gemm_parser, GemmRequest)
    gemm_parser.add_argument("--verify", action="store_true",
                             help="also compute numerically on random data")
    gemm_parser.add_argument("--seed", type=int, default=0)
    gemm_parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase engine wall times (trace compile, schedule, "
             "memory replay, arbitration) and the scheduler chosen per "
             "trace")
    _add_machine_file_option(gemm_parser)
    _add_trace_cache_option(gemm_parser)
    _add_server_option(gemm_parser)

    exp_parser = sub.add_parser("experiment", help="run a paper experiment")
    exp_parser.add_argument(
        "name",
        help="experiment name, 'all', or 'runs' to list resumable journals")
    exp_parser.add_argument("--fast", action="store_true")
    exp_parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase engine wall times (trace compile, schedule, "
             "memory replay, arbitration) and the scheduler chosen per "
             "trace; use with --jobs 1 for full coverage")
    exp_parser.add_argument(
        "--prune-days", type=float, metavar="DAYS",
        help="with `experiment runs`: delete journals older than DAYS")
    _add_cores_option(exp_parser)
    _add_machine_option(exp_parser)
    _add_machine_file_option(exp_parser)
    _add_orchestrator_options(exp_parser)

    abl_parser = sub.add_parser("ablation", help="run a design-choice study")
    abl_parser.add_argument("name")
    abl_parser.add_argument("--fast", action="store_true")
    _add_cores_option(abl_parser)
    _add_machine_option(abl_parser)
    _add_machine_file_option(abl_parser)
    _add_orchestrator_options(abl_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="shapes x methods x machines speedup sweep")
    add_request_options(sweep_parser, SweepRequest)
    _add_machine_file_option(sweep_parser)
    # --engine comes from the request dataclass; the rest of the
    # orchestrator surface (jobs/journal/output/cache) is execution
    # policy and stays CLI-level
    _add_orchestrator_options(sweep_parser, engine=False)
    _add_server_option(sweep_parser)

    sub.add_parser("area", help="print the physical-design report")

    cal_parser = sub.add_parser(
        "calibrate",
        help="fit (and persist) analytic-model coefficients against the "
             "simulator")
    add_request_options(cal_parser, CalibrateRequest)
    cal_parser.add_argument(
        "--jobs", type=int, default=1,
        help="fan methods across worker processes (coefficients are "
             "independent of --jobs)")
    cal_parser.add_argument(
        "--no-multicore", action="store_true",
        help="skip the multicore contention probes (single-core "
             "coefficients only)")
    _add_machine_file_option(cal_parser)
    _add_trace_cache_option(cal_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="long-running simulation daemon answering typed JSON "
             "requests over HTTP")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8735,
                              help="TCP port (default 8735; 0 picks a "
                                   "free port)")
    serve_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes per served sweep")
    serve_parser.add_argument("--cache-dir", metavar="DIR",
                              help="result cache root (default "
                                   "~/.cache/repro-camp)")
    serve_parser.add_argument("--no-warm", action="store_true",
                              help="skip the start-up warm-up pass "
                                   "(imports, registry, model store)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every request to stderr")
    _add_machine_file_option(serve_parser)
    _add_engine_option(serve_parser)

    cache_parser = sub.add_parser(
        "cache", help="inspect or prune the on-disk result cache")
    cache_parser.add_argument("action", choices=("stats", "prune"))
    cache_parser.add_argument("--max-age-days", type=float, metavar="DAYS",
                              help="prune: delete entries older than DAYS")
    cache_parser.add_argument("--max-size-mb", type=float, metavar="MB",
                              help="prune: evict oldest entries until the "
                                   "store fits in MB")
    cache_parser.add_argument("--cache-dir", metavar="DIR",
                              help="cache root (default ~/.cache/repro-camp)")

    for name, spec in _BENCH_COMMANDS.items():
        bench = sub.add_parser(name, help=spec["help"])
        for flags, kwargs in spec["options"]:
            bench.add_argument(*flags, **kwargs)
        bench.add_argument("--out", default=spec["out"],
                           help="output JSON path ('' to skip writing)")
        bench.add_argument("--check", metavar="BASELINE",
                           help="compare against a committed baseline JSON "
                                "and fail on perf regression")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "gemm": _cmd_gemm,
    "experiment": _cmd_experiment,
    "ablation": _cmd_ablation,
    "sweep": _cmd_sweep,
    "area": _cmd_area,
    "calibrate": _cmd_calibrate,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    **{name: spec["run"] for name, spec in _BENCH_COMMANDS.items()},
}


def main(argv=None):
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as error:
        # argparse-level failures (bad --shapes/--sizes values, unknown
        # options) become return codes so embedding callers — and the
        # daemon — never die on a malformed request
        code = error.code
        return code if isinstance(code, int) else 2
    _apply_engine(args)
    code = _apply_machine_files(args)
    if code:
        return code
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
