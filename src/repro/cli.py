"""Command-line interface.

::

    python -m repro.cli list                      # kernels + experiments
    python -m repro.cli gemm 512 512 512 --method camp8
    python -m repro.cli experiment table1 [--fast]
    python -m repro.cli experiment all --fast
    python -m repro.cli ablation vector-length
    python -m repro.cli area
"""

import argparse
import sys

import numpy as np


def _cmd_list(_args):
    from repro.experiments import ABLATIONS, ALL_EXPERIMENTS
    from repro.gemm.microkernel import kernel_names

    print("kernels     :", ", ".join(kernel_names()))
    print("machines    : a64fx, sargantana")
    print("experiments :", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("ablations   :", ", ".join(sorted(ABLATIONS)))
    return 0


def _cmd_gemm(args):
    from repro.gemm.api import analyze, gemm

    if args.verify:
        rng = np.random.default_rng(args.seed)
        bits = 4 if args.method == "camp4" else 8
        lo, hi = -(1 << (bits - 1)), 1 << (bits - 1)
        if args.method == "openblas-fp32":
            a = rng.normal(size=(args.m, args.k)).astype(np.float32)
            b = rng.normal(size=(args.k, args.n)).astype(np.float32)
        else:
            a = rng.integers(lo, hi, size=(args.m, args.k)).astype(np.int8)
            b = rng.integers(lo, hi, size=(args.k, args.n)).astype(np.int8)
        result = gemm(a, b, method=args.method, machine=args.machine)
        execution = result.execution
        print("numeric verification: computed %dx%d result" % result.c.shape)
    else:
        execution = analyze(args.m, args.n, args.k, method=args.method,
                            machine=args.machine)
    print("method        : %s on %s" % (execution.kernel_name, execution.machine_name))
    print("cycles        : %.4g" % execution.cycles)
    print("instructions  : %d (kernel %d + packing %d)" % (
        execution.total_instructions, execution.kernel_instructions,
        execution.packing_instructions))
    print("cycles/MAC    : %.4f" % execution.cycles_per_mac)
    print("throughput    : %.1f GOPS @ %.1f GHz" % (
        execution.gops, execution.frequency_ghz))
    print("blocking      : mc=%d kc=%d nc=%d (m_r=%d n_r=%d)" % (
        execution.blocking.mc, execution.blocking.kc, execution.blocking.nc,
        execution.blocking.m_r, execution.blocking.n_r))
    return 0


def _run_experiment_table(table, name, fast):
    module = table[name]
    results = module.run(fast=fast)
    print(module.format_results(results))
    print()
    return 0


def _cmd_experiment(args):
    from repro.experiments import ALL_EXPERIMENTS

    if args.name == "all":
        for name in ALL_EXPERIMENTS:
            _run_experiment_table(ALL_EXPERIMENTS, name, args.fast)
        return 0
    if args.name not in ALL_EXPERIMENTS:
        print("unknown experiment %r; try: %s"
              % (args.name, ", ".join(sorted(ALL_EXPERIMENTS)) + ", all"),
              file=sys.stderr)
        return 2
    return _run_experiment_table(ALL_EXPERIMENTS, args.name, args.fast)


def _cmd_ablation(args):
    from repro.experiments import ABLATIONS

    if args.name == "all":
        for name in ABLATIONS:
            _run_experiment_table(ABLATIONS, name, args.fast)
        return 0
    if args.name not in ABLATIONS:
        print("unknown ablation %r; try: %s"
              % (args.name, ", ".join(sorted(ABLATIONS)) + ", all"),
              file=sys.stderr)
        return 2
    return _run_experiment_table(ABLATIONS, args.name, args.fast)


def _cmd_area(_args):
    from repro.experiments import exp_area

    print(exp_area.format_results(exp_area.run()))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-camp",
        description="CAMP (MICRO 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list kernels, machines and experiments")

    gemm_parser = sub.add_parser("gemm", help="analyze (or run) one GEMM")
    gemm_parser.add_argument("m", type=int)
    gemm_parser.add_argument("n", type=int)
    gemm_parser.add_argument("k", type=int)
    gemm_parser.add_argument("--method", default="camp8")
    gemm_parser.add_argument("--machine", default="a64fx")
    gemm_parser.add_argument("--verify", action="store_true",
                             help="also compute numerically on random data")
    gemm_parser.add_argument("--seed", type=int, default=0)

    exp_parser = sub.add_parser("experiment", help="run a paper experiment")
    exp_parser.add_argument("name")
    exp_parser.add_argument("--fast", action="store_true")

    abl_parser = sub.add_parser("ablation", help="run a design-choice study")
    abl_parser.add_argument("name")
    abl_parser.add_argument("--fast", action="store_true")

    sub.add_parser("area", help="print the physical-design report")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "gemm": _cmd_gemm,
    "experiment": _cmd_experiment,
    "ablation": _cmd_ablation,
    "area": _cmd_area,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
