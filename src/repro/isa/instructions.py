"""Instruction definitions for the modelled vector ISA.

The ISA is deliberately small: just enough to express the GEMM
micro-kernels the paper evaluates (naive, hand-vectorized int32/int8,
gemmlowp-style, OpenBLAS-SGEMM-style, MMLA, and CAMP) with a faithful
instruction *mix* — loads, stores, broadcasts, widenings, multiply-adds
and the matrix instructions.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.dtypes import DType
from repro.isa.registers import Reg


class Opcode(enum.Enum):
    # --- scalar ---
    SALU = "salu"          # scalar add/sub/logic (loop bookkeeping)
    SMUL = "smul"          # scalar multiply (address arithmetic)
    SLOAD = "sload"        # scalar load
    SSTORE = "sstore"      # scalar store
    BRANCH = "branch"      # conditional branch (loop back-edge)

    # --- vector memory ---
    VLOAD = "vload"        # contiguous vector load
    VSTORE = "vstore"      # contiguous vector store
    VLOAD_STRIDED = "vload_strided"  # strided gather-style load

    # --- vector arithmetic ---
    VADD = "vadd"
    VMUL = "vmul"
    VMLA = "vmla"          # elementwise multiply-accumulate
    VDUP = "vdup"          # broadcast scalar / element across register
    VWIDEN = "vwiden"      # widening conversion (e.g. int8 -> int16)
    VNARROW = "vnarrow"    # narrowing / requantize step
    VREINTERPRET = "vreinterpret"  # lane re-interpretation (free-ish shuffle)
    VREDUCE = "vreduce"    # horizontal reduction
    VZERO = "vzero"        # zero a register
    VMOV = "vmov"          # register move
    FMLA = "fmla"          # fp32 fused multiply-add

    # --- matrix ---
    CAMP = "camp"          # the paper's instruction (this work)
    MMLA = "mmla"          # ARMv8.6 integer matrix multiply-accumulate
    CAMP_STORE = "camp_store"  # move auxiliary accumulator to a vector register


class FUClass(enum.Enum):
    """Functional-unit class an opcode executes on."""

    SCALAR = "scalar"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    VALU = "valu"      # vector add/logic/move/dup
    VMUL = "vmul"      # vector multiply / multiply-accumulate
    MATRIX = "matrix"  # CAMP / MMLA hybrid-multiplier unit


OPCODE_FU = {
    Opcode.SALU: FUClass.SCALAR,
    Opcode.SMUL: FUClass.SCALAR,
    Opcode.SLOAD: FUClass.LOAD,
    Opcode.SSTORE: FUClass.STORE,
    Opcode.BRANCH: FUClass.BRANCH,
    Opcode.VLOAD: FUClass.LOAD,
    Opcode.VLOAD_STRIDED: FUClass.LOAD,
    Opcode.VSTORE: FUClass.STORE,
    Opcode.VADD: FUClass.VALU,
    Opcode.VMUL: FUClass.VMUL,
    Opcode.VMLA: FUClass.VMUL,
    Opcode.VDUP: FUClass.VALU,
    Opcode.VWIDEN: FUClass.VALU,
    Opcode.VNARROW: FUClass.VALU,
    Opcode.VREINTERPRET: FUClass.VALU,
    Opcode.VREDUCE: FUClass.VALU,
    Opcode.VZERO: FUClass.VALU,
    Opcode.VMOV: FUClass.VALU,
    Opcode.FMLA: FUClass.VMUL,
    Opcode.CAMP: FUClass.MATRIX,
    Opcode.MMLA: FUClass.MATRIX,
    Opcode.CAMP_STORE: FUClass.VALU,
}

MEMORY_OPCODES = frozenset(
    {Opcode.VLOAD, Opcode.VSTORE, Opcode.VLOAD_STRIDED, Opcode.SLOAD, Opcode.SSTORE}
)

VECTOR_OPCODES = frozenset(
    op for op in Opcode
    if op not in {Opcode.SALU, Opcode.SMUL, Opcode.SLOAD, Opcode.SSTORE, Opcode.BRANCH}
)


@dataclass(frozen=True)
class Instruction:
    """One instruction of the modelled ISA.

    ``dst`` / ``src`` carry the architectural registers used for
    dependence tracking; memory operations also carry a byte ``addr``
    and transfer ``size`` so the cache model can be consulted.
    """

    opcode: Opcode
    dst: Tuple[Reg, ...] = ()
    src: Tuple[Reg, ...] = ()
    dtype: Optional[DType] = None
    addr: Optional[int] = None
    size: Optional[int] = None
    imm: Optional[int] = None
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self):
        if self.opcode in MEMORY_OPCODES:
            if self.addr is None or self.size is None:
                raise ValueError("%s requires addr and size" % self.opcode.value)
        if self.opcode is Opcode.CAMP and self.dtype not in (DType.INT8, DType.INT4):
            raise ValueError("camp supports int8 and int4 operands only")

    @property
    def fu_class(self):
        """Functional-unit class this instruction occupies."""
        return OPCODE_FU[self.opcode]

    @property
    def is_memory(self):
        return self.opcode in MEMORY_OPCODES

    @property
    def is_load(self):
        return self.opcode in (Opcode.VLOAD, Opcode.VLOAD_STRIDED, Opcode.SLOAD)

    @property
    def is_store(self):
        return self.opcode in (Opcode.VSTORE, Opcode.SSTORE)

    @property
    def is_vector(self):
        return self.opcode in VECTOR_OPCODES

    def reads(self):
        """Registers whose values this instruction consumes."""
        return self.src

    def writes(self):
        """Registers this instruction produces."""
        return self.dst

    def __str__(self):
        parts = [self.opcode.value]
        if self.dtype is not None:
            parts.append("." + self.dtype.value)
        operands = [str(r) for r in self.dst] + [str(r) for r in self.src]
        if self.addr is not None:
            operands.append("[0x%x:%d]" % (self.addr, self.size))
        if self.imm is not None:
            operands.append("#%d" % self.imm)
        return "%s %s" % ("".join(parts), ", ".join(operands))
