"""Instruction definitions for the modelled vector ISA.

The ISA is deliberately small: just enough to express the GEMM
micro-kernels the paper evaluates (naive, hand-vectorized int32/int8,
gemmlowp-style, OpenBLAS-SGEMM-style, MMLA, and CAMP) with a faithful
instruction *mix* — loads, stores, broadcasts, widenings, multiply-adds
and the matrix instructions.
"""

import enum

from repro.isa.dtypes import DType


class Opcode(enum.Enum):
    # --- scalar ---
    SALU = "salu"          # scalar add/sub/logic (loop bookkeeping)
    SMUL = "smul"          # scalar multiply (address arithmetic)
    SLOAD = "sload"        # scalar load
    SSTORE = "sstore"      # scalar store
    BRANCH = "branch"      # conditional branch (loop back-edge)

    # --- vector memory ---
    VLOAD = "vload"        # contiguous vector load
    VSTORE = "vstore"      # contiguous vector store
    VLOAD_STRIDED = "vload_strided"  # strided gather-style load

    # --- vector arithmetic ---
    VADD = "vadd"
    VMUL = "vmul"
    VMLA = "vmla"          # elementwise multiply-accumulate
    VDUP = "vdup"          # broadcast scalar / element across register
    VWIDEN = "vwiden"      # widening conversion (e.g. int8 -> int16)
    VNARROW = "vnarrow"    # narrowing / requantize step
    VREINTERPRET = "vreinterpret"  # lane re-interpretation (free-ish shuffle)
    VREDUCE = "vreduce"    # horizontal reduction
    VZERO = "vzero"        # zero a register
    VMOV = "vmov"          # register move
    FMLA = "fmla"          # fp32 fused multiply-add

    # --- matrix ---
    CAMP = "camp"          # the paper's instruction (this work)
    MMLA = "mmla"          # ARMv8.6 integer matrix multiply-accumulate
    CAMP_STORE = "camp_store"  # move auxiliary accumulator to a vector register


class FUClass(enum.Enum):
    """Functional-unit class an opcode executes on."""

    SCALAR = "scalar"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    VALU = "valu"      # vector add/logic/move/dup
    VMUL = "vmul"      # vector multiply / multiply-accumulate
    MATRIX = "matrix"  # CAMP / MMLA hybrid-multiplier unit


OPCODE_FU = {
    Opcode.SALU: FUClass.SCALAR,
    Opcode.SMUL: FUClass.SCALAR,
    Opcode.SLOAD: FUClass.LOAD,
    Opcode.SSTORE: FUClass.STORE,
    Opcode.BRANCH: FUClass.BRANCH,
    Opcode.VLOAD: FUClass.LOAD,
    Opcode.VLOAD_STRIDED: FUClass.LOAD,
    Opcode.VSTORE: FUClass.STORE,
    Opcode.VADD: FUClass.VALU,
    Opcode.VMUL: FUClass.VMUL,
    Opcode.VMLA: FUClass.VMUL,
    Opcode.VDUP: FUClass.VALU,
    Opcode.VWIDEN: FUClass.VALU,
    Opcode.VNARROW: FUClass.VALU,
    Opcode.VREINTERPRET: FUClass.VALU,
    Opcode.VREDUCE: FUClass.VALU,
    Opcode.VZERO: FUClass.VALU,
    Opcode.VMOV: FUClass.VALU,
    Opcode.FMLA: FUClass.VMUL,
    Opcode.CAMP: FUClass.MATRIX,
    Opcode.MMLA: FUClass.MATRIX,
    Opcode.CAMP_STORE: FUClass.VALU,
}

MEMORY_OPCODES = frozenset(
    {Opcode.VLOAD, Opcode.VSTORE, Opcode.VLOAD_STRIDED, Opcode.SLOAD, Opcode.SSTORE}
)

VECTOR_OPCODES = frozenset(
    op for op in Opcode
    if op not in {Opcode.SALU, Opcode.SMUL, Opcode.SLOAD, Opcode.SSTORE, Opcode.BRANCH}
)


class Instruction:
    """One instruction of the modelled ISA.

    ``dst`` / ``src`` carry the architectural registers used for
    dependence tracking; memory operations also carry a byte ``addr``
    and transfer ``size`` so the cache model can be consulted.

    Implemented as a hand-rolled ``__slots__`` class rather than a
    dataclass: micro-kernel trace emission constructs hundreds of
    thousands of these, and the dataclass ``__init__`` +
    ``object.__setattr__`` machinery dominated trace-build time.
    Equality and hashing compare every field except ``meta``, matching
    the previous frozen-dataclass behaviour.
    """

    __slots__ = ("opcode", "dst", "src", "dtype", "addr", "size", "imm", "meta")

    def __init__(self, opcode, dst=(), src=(), dtype=None, addr=None,
                 size=None, imm=None, meta=None):
        self.opcode = opcode
        self.dst = dst
        self.src = src
        self.dtype = dtype
        self.addr = addr
        self.size = size
        self.imm = imm
        self.meta = {} if meta is None else meta
        if opcode in MEMORY_OPCODES:
            if addr is None or size is None:
                raise ValueError("%s requires addr and size" % opcode.value)
        if opcode is Opcode.CAMP and dtype not in (DType.INT8, DType.INT4):
            raise ValueError("camp supports int8 and int4 operands only")

    def _key(self):
        return (self.opcode, self.dst, self.src, self.dtype, self.addr,
                self.size, self.imm)

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        return (
            "Instruction(opcode=%r, dst=%r, src=%r, dtype=%r, addr=%r, "
            "size=%r, imm=%r, meta=%r)"
            % (self.opcode, self.dst, self.src, self.dtype, self.addr,
               self.size, self.imm, self.meta)
        )

    @property
    def fu_class(self):
        """Functional-unit class this instruction occupies."""
        return OPCODE_FU[self.opcode]

    @property
    def is_memory(self):
        return self.opcode in MEMORY_OPCODES

    @property
    def is_load(self):
        return self.opcode in (Opcode.VLOAD, Opcode.VLOAD_STRIDED, Opcode.SLOAD)

    @property
    def is_store(self):
        return self.opcode in (Opcode.VSTORE, Opcode.SSTORE)

    @property
    def is_vector(self):
        return self.opcode in VECTOR_OPCODES

    def reads(self):
        """Registers whose values this instruction consumes."""
        return self.src

    def writes(self):
        """Registers this instruction produces."""
        return self.dst

    def __str__(self):
        parts = [self.opcode.value]
        if self.dtype is not None:
            parts.append("." + self.dtype.value)
        operands = [str(r) for r in self.dst] + [str(r) for r in self.src]
        if self.addr is not None:
            operands.append("[0x%x:%d]" % (self.addr, self.size))
        if self.imm is not None:
            operands.append("#%d" % self.imm)
        return "%s %s" % ("".join(parts), ", ".join(operands))
