"""Binary encoding of the modelled ISA.

Instructions encode into fixed 96-bit words (three 32-bit parcels):

- parcel 0: opcode (8) | dtype (4) | #dst (2) | #src (2) | regs (16)
- parcel 1: additional register specifiers + immediate low bits
- parcel 2: memory address / immediate (32)

The encoding exists so traces can be persisted and diffed; it also
pins down exactly what architectural state an instruction names, which
keeps the simulator honest (anything not encodable is not an
instruction).
"""

import struct

from repro.isa.dtypes import DType
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg

_OPCODES = list(Opcode)
_DTYPES = [None] + list(DType)
_KINDS = ["v", "x", "a"]

WORD_BYTES = 12


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded/decoded."""


def _encode_reg(reg):
    return (_KINDS.index(reg.kind) << 6) | reg.index


def _decode_reg(bits):
    kind = _KINDS[(bits >> 6) & 0x3]
    return Reg(kind, bits & 0x3F)


def encode_instruction(inst):
    """Encode one instruction into :data:`WORD_BYTES` bytes."""
    regs = list(inst.dst) + list(inst.src)
    if len(inst.dst) > 3 or len(inst.src) > 3:
        raise EncodingError("too many register operands: %s" % (inst,))
    opc = _OPCODES.index(inst.opcode)
    dt = _DTYPES.index(inst.dtype)
    p0 = (opc << 24) | (dt << 20) | (len(inst.dst) << 18) | (len(inst.src) << 16)
    packed = [_encode_reg(r) for r in regs] + [0] * (6 - len(regs))
    p0 |= (packed[0] << 8) | packed[1]
    p1 = (packed[2] << 24) | (packed[3] << 16) | (packed[4] << 8) | packed[5]
    if inst.addr is not None:
        if inst.addr >= 1 << 56 or inst.size is None or inst.size >= 1 << 16:
            raise EncodingError("address/size out of encodable range: %s" % (inst,))
        p2 = inst.addr & 0xFFFFFFFF
        p1_extra = ((inst.addr >> 32) & 0xFF) | ((inst.size & 0xFFFF) << 8)
        # address high bits + size live in an auxiliary parcel overlaid on p1's
        # unused space; register parcels never use the top byte for memory ops
        p1 = (p1 & 0xFF000000) | (p1_extra & 0x00FFFFFF)
    elif inst.imm is not None:
        if not -(1 << 31) <= inst.imm < (1 << 31):
            raise EncodingError("immediate out of range: %s" % (inst,))
        p0 |= 1 << 23  # has-immediate flag (top bit of the dtype nibble)
        p2 = inst.imm & 0xFFFFFFFF
    else:
        p2 = 0
    return struct.pack("<III", p0, p1, p2)


def decode_instruction(blob):
    """Decode :data:`WORD_BYTES` bytes back into an :class:`Instruction`."""
    if len(blob) != WORD_BYTES:
        raise EncodingError("expected %d bytes, got %d" % (WORD_BYTES, len(blob)))
    p0, p1, p2 = struct.unpack("<III", blob)
    opcode = _OPCODES[(p0 >> 24) & 0xFF]
    dtype = _DTYPES[(p0 >> 20) & 0x7]
    n_dst = (p0 >> 18) & 0x3
    n_src = (p0 >> 16) & 0x3
    reg_bits = [(p0 >> 8) & 0xFF, p0 & 0xFF]
    addr = size = imm = None
    from repro.isa.instructions import MEMORY_OPCODES

    if opcode in MEMORY_OPCODES:
        reg_bits += [(p1 >> 24) & 0xFF, 0, 0, 0]
        addr = p2 | ((p1 & 0xFF) << 32)
        size = (p1 >> 8) & 0xFFFF
    else:
        reg_bits += [
            (p1 >> 24) & 0xFF,
            (p1 >> 16) & 0xFF,
            (p1 >> 8) & 0xFF,
            p1 & 0xFF,
        ]
        if p0 & (1 << 23):
            imm = p2 - (1 << 32) if p2 >= (1 << 31) else p2
    regs = [_decode_reg(bits) for bits in reg_bits[: n_dst + n_src]]
    return Instruction(
        opcode,
        tuple(regs[:n_dst]),
        tuple(regs[n_dst : n_dst + n_src]),
        dtype=dtype,
        addr=addr,
        size=size,
        imm=imm,
    )


def encode_program(program):
    """Encode a whole program to bytes."""
    return b"".join(encode_instruction(inst) for inst in program)


def decode_program(blob, name=""):
    """Decode bytes produced by :func:`encode_program`."""
    if len(blob) % WORD_BYTES:
        raise EncodingError(
            "blob length %d not a multiple of %d" % (len(blob), WORD_BYTES)
        )
    instructions = [
        decode_instruction(blob[i : i + WORD_BYTES])
        for i in range(0, len(blob), WORD_BYTES)
    ]
    return Program(instructions, name=name)
