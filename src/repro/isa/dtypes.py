"""Element data types supported by the modelled vector ISA."""

import enum

import numpy as np


class DType(enum.Enum):
    """Element type of a vector operation.

    ``INT4`` has no native numpy storage; int4 vectors are held as one
    nibble per ``np.int8`` element (sign-extended), and the functional
    model enforces the 4-bit value range at the points where hardware
    would.
    """

    INT4 = "int4"
    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    INT64 = "int64"
    FP32 = "fp32"

    @property
    def bits(self):
        """Storage width of one element in bits."""
        return _BITS[self]

    @property
    def bytes(self):
        """Storage width of one element in bytes (int4 packs two per byte)."""
        return max(self.bits // 8, 0) or 1  # int4 loads are packed: handled by callers

    @property
    def numpy_dtype(self):
        """The numpy dtype used to hold values of this element type."""
        return _NUMPY[self]

    @property
    def is_integer(self):
        return self is not DType.FP32

    @property
    def min_value(self):
        """Smallest representable value (signed, two's complement)."""
        if self is DType.FP32:
            return -np.inf
        return -(1 << (self.bits - 1))

    @property
    def max_value(self):
        """Largest representable value (signed, two's complement)."""
        if self is DType.FP32:
            return np.inf
        return (1 << (self.bits - 1)) - 1

    def elements_per_register(self, vector_length_bits):
        """How many elements of this type fit in one vector register."""
        if vector_length_bits % self.bits:
            raise ValueError(
                "vector length %d is not a multiple of %s element width"
                % (vector_length_bits, self.value)
            )
        return vector_length_bits // self.bits


_BITS = {
    DType.INT4: 4,
    DType.INT8: 8,
    DType.INT16: 16,
    DType.INT32: 32,
    DType.INT64: 64,
    DType.FP32: 32,
}

_NUMPY = {
    DType.INT4: np.int8,
    DType.INT8: np.int8,
    DType.INT16: np.int16,
    DType.INT32: np.int32,
    DType.INT64: np.int64,
    DType.FP32: np.float32,
}
