"""Register naming and architectural register files.

The simulator tracks dependences through :class:`Reg` handles; the
functional executor stores actual values in :class:`VectorRegisterFile`
and :class:`ScalarRegisterFile`.
"""

from typing import NamedTuple

import numpy as np

from repro.isa.dtypes import DType


class Reg(NamedTuple):
    """An architectural register handle.

    ``kind`` is one of:

    - ``"v"`` — vector register (``v0`` .. ``v31``)
    - ``"x"`` — scalar register (``x0`` .. ``x31``)
    - ``"a"`` — CAMP auxiliary accumulator register (``a0`` ..)

    The auxiliary registers model the private accumulation storage the
    CAMP unit uses between ``camp`` issues, which the paper adds so the
    vector register file does not need to hold live partial sums.
    """

    kind: str
    index: int

    def __str__(self):
        return "%s%d" % (self.kind, self.index)

    @property
    def is_vector(self):
        return self.kind == "v"

    @property
    def is_scalar(self):
        return self.kind == "x"

    @property
    def is_aux(self):
        return self.kind == "a"


def vreg(index):
    """Vector register ``v<index>``."""
    return Reg("v", index)


def xreg(index):
    """Scalar register ``x<index>``."""
    return Reg("x", index)


def areg(index):
    """CAMP auxiliary accumulator register ``a<index>``."""
    return Reg("a", index)


class RegisterFile:
    """Base register file: a mapping from :class:`Reg` to a value."""

    def __init__(self, kind, count):
        if count <= 0:
            raise ValueError("register count must be positive")
        self.kind = kind
        self.count = count
        self._values = {}

    def _check(self, reg):
        if reg.kind != self.kind:
            raise KeyError(
                "register %s does not belong to the %r file" % (reg, self.kind)
            )
        if not 0 <= reg.index < self.count:
            raise KeyError("register %s out of range (0..%d)" % (reg, self.count - 1))

    def read(self, reg):
        self._check(reg)
        if reg not in self._values:
            raise KeyError("register %s read before write" % (reg,))
        return self._values[reg]

    def write(self, reg, value):
        self._check(reg)
        self._values[reg] = value

    def is_written(self, reg):
        self._check(reg)
        return reg in self._values

    def reset(self):
        self._values.clear()


class VectorRegisterFile(RegisterFile):
    """Vector register file holding fixed-width bit vectors.

    Values are numpy arrays. The stored array's total bit width must
    equal the architectural vector length; e.g. with a 512-bit vector
    length a register may hold 64 ``int8`` elements or 16 ``int32``
    elements.

    Int4 data is stored *unpacked*, one nibble per ``int8`` slot, in an
    array of ``2 * elements_per_register(int8)`` entries — mirroring how
    the CAMP datapath sees 128 nibbles in a 512-bit register.
    """

    def __init__(self, count=32, vector_length_bits=512):
        super().__init__("v", count)
        self.vector_length_bits = vector_length_bits

    def expected_elements(self, dtype):
        """Number of elements a full register holds for ``dtype``."""
        return dtype.elements_per_register(self.vector_length_bits)

    def write(self, reg, value, dtype=None):
        value = np.asarray(value)
        if dtype is not None:
            expected = self.expected_elements(dtype)
            if value.size != expected:
                raise ValueError(
                    "register %s expects %d %s elements, got %d"
                    % (reg, expected, dtype.value, value.size)
                )
            value = value.astype(dtype.numpy_dtype, copy=False)
        super().write(reg, value.ravel())


class ScalarRegisterFile(RegisterFile):
    """Scalar (integer) register file. ``x0`` is hardwired to zero."""

    def __init__(self, count=32):
        super().__init__("x", count)
        self._values[Reg("x", 0)] = 0

    def write(self, reg, value):
        if reg.index == 0:
            return  # writes to x0 are discarded, as in RISC-V
        super().write(reg, int(value))


class AuxRegisterFile(RegisterFile):
    """CAMP auxiliary accumulator registers.

    Each holds a 4x4 int32 tile (one micro-kernel accumulator). The
    paper uses a single auxiliary register per CAMP unit; we allow a
    small file so multi-tile kernels can be explored.
    """

    TILE_SHAPE = (4, 4)

    def __init__(self, count=4):
        super().__init__("a", count)

    def write(self, reg, value):
        value = np.asarray(value, dtype=DType.INT32.numpy_dtype)
        if value.shape != self.TILE_SHAPE:
            raise ValueError(
                "auxiliary register %s expects a %s tile, got %s"
                % (reg, self.TILE_SHAPE, value.shape)
            )
        super().write(reg, value.copy())

    def zero(self, reg):
        self.write(reg, np.zeros(self.TILE_SHAPE, dtype=np.int32))
