"""Assembler-style builder for emitting instruction traces.

Micro-kernels use a :class:`ProgramBuilder` to emit a dynamic trace
mirroring what their compiled loop would execute. The builder offers
one method per opcode plus register allocation helpers.
"""

from repro.isa.dtypes import DType
from repro.isa.instructions import Instruction, MEMORY_OPCODES, Opcode
from repro.isa.program import Program
from repro.isa.registers import Reg, areg, vreg, xreg

_instruction_new = Instruction.__new__


class RegisterAllocator:
    """Round-robin allocator over a register namespace.

    Micro-kernels have static register assignments; this helper hands
    out registers and raises once the architectural file is exhausted,
    surfacing the "register pressure" constraint the paper discusses
    for generic vector GEMM.
    """

    def __init__(self, kind, count, reserved=()):
        self.kind = kind
        self.count = count
        self._free = [i for i in range(count) if i not in set(reserved)]
        self._live = set()

    def alloc(self):
        if not self._free:
            raise RuntimeError(
                "out of %r registers (%d architectural): the kernel needs more "
                "live values than the register file holds" % (self.kind, self.count)
            )
        index = self._free.pop(0)
        self._live.add(index)
        return Reg(self.kind, index)

    def free(self, reg):
        if reg.kind != self.kind or reg.index not in self._live:
            raise ValueError("register %s is not live in this allocator" % (reg,))
        self._live.discard(reg.index)
        self._free.append(reg.index)

    @property
    def live_count(self):
        return len(self._live)


class ProgramBuilder:
    """Emit instructions into a :class:`Program`."""

    def __init__(self, name="", vector_length_bits=512, vector_registers=32):
        self.program = Program(name=name)
        self.vector_length_bits = vector_length_bits
        self.vregs = RegisterAllocator("v", vector_registers)
        self.xregs = RegisterAllocator("x", 32, reserved=(0,))
        self.aregs = RegisterAllocator("a", 4)
        # bound append on the trace list: emit() is the hottest call of
        # trace construction, so skip Program.append's isinstance check
        self._append = self.program._instructions.append

    # -- emission -----------------------------------------------------

    def emit(self, opcode, dst=(), src=(), dtype=None, addr=None, size=None,
             imm=None):
        # Inline Instruction construction (same fields and validation as
        # Instruction.__init__): emit is called once per trace
        # instruction and the call indirection is measurable.
        if type(dst) is not tuple:
            dst = tuple(dst)
        if type(src) is not tuple:
            src = tuple(src)
        inst = _instruction_new(Instruction)
        inst.opcode = opcode
        inst.dst = dst
        inst.src = src
        inst.dtype = dtype
        inst.addr = addr
        inst.size = size
        inst.imm = imm
        inst.meta = {}
        if opcode in MEMORY_OPCODES:
            if addr is None or size is None:
                raise ValueError("%s requires addr and size" % opcode.value)
        if opcode is Opcode.CAMP and dtype not in (DType.INT8, DType.INT4):
            raise ValueError("camp supports int8 and int4 operands only")
        self._append(inst)
        return inst

    # -- vector memory ------------------------------------------------

    def vload(self, dst, addr, dtype, size=None):
        """Contiguous vector load filling one full register."""
        if size is None:
            size = self.vector_length_bits // 8
        return self.emit(Opcode.VLOAD, (dst,), (), dtype=dtype, addr=addr, size=size)

    def vload_strided(self, dst, addr, dtype, stride, size=None):
        if size is None:
            size = self.vector_length_bits // 8
        inst = self.emit(
            Opcode.VLOAD_STRIDED, (dst,), (), dtype=dtype, addr=addr, size=size
        )
        inst.meta["stride"] = stride
        return inst

    def vstore(self, src, addr, dtype, size=None):
        if size is None:
            size = self.vector_length_bits // 8
        return self.emit(Opcode.VSTORE, (), (src,), dtype=dtype, addr=addr, size=size)

    # -- vector arithmetic ---------------------------------------------

    def vzero(self, dst, dtype=DType.INT32):
        return self.emit(Opcode.VZERO, (dst,), (), dtype=dtype)

    def vadd(self, dst, a, b, dtype):
        return self.emit(Opcode.VADD, (dst,), (a, b), dtype=dtype)

    def vmul(self, dst, a, b, dtype):
        return self.emit(Opcode.VMUL, (dst,), (a, b), dtype=dtype)

    def vmla(self, acc, a, b, dtype):
        """acc += a * b (elementwise); acc is both source and dest."""
        return self.emit(Opcode.VMLA, (acc,), (acc, a, b), dtype=dtype)

    def fmla(self, acc, a, b):
        return self.emit(Opcode.FMLA, (acc,), (acc, a, b), dtype=DType.FP32)

    def vdup(self, dst, src, dtype, lane=None, elements=None):
        """Broadcast a scalar register or a vector lane across ``dst``.

        ``lane`` selects the element when ``src`` is a vector register;
        ``elements`` bounds the broadcast width (partial-vector forms).
        """
        inst = self.emit(Opcode.VDUP, (dst,), (src,), dtype=dtype, imm=lane)
        if elements is not None:
            inst.meta["elements"] = elements
        return inst

    def vwiden(self, dst, src, from_dtype, to_dtype):
        inst = self.emit(Opcode.VWIDEN, (dst,), (src,), dtype=to_dtype)
        inst.meta["from_dtype"] = from_dtype
        return inst

    def vnarrow(self, dst, src, from_dtype, to_dtype):
        inst = self.emit(Opcode.VNARROW, (dst,), (src,), dtype=to_dtype)
        inst.meta["from_dtype"] = from_dtype
        return inst

    def vreinterpret(self, dst, src, dtype):
        return self.emit(Opcode.VREINTERPRET, (dst,), (src,), dtype=dtype)

    def vreduce(self, dst_scalar, src, dtype):
        return self.emit(Opcode.VREDUCE, (dst_scalar,), (src,), dtype=dtype)

    def vmov(self, dst, src, dtype=DType.INT32):
        return self.emit(Opcode.VMOV, (dst,), (src,), dtype=dtype)

    # -- matrix ---------------------------------------------------------

    def camp(self, acc, a, b, dtype):
        """CAMP outer-product matrix multiply-accumulate.

        ``acc`` is an auxiliary register holding the 4x4 int32 tile;
        ``a`` holds a 4x16 (int8) or 4x32 (int4) column-major panel and
        ``b`` a 16x4 / 32x4 row-major panel.
        """
        return self.emit(Opcode.CAMP, (acc,), (acc, a, b), dtype=dtype)

    def camp_store(self, dst_vector, acc, chunk=0):
        """Move the auxiliary accumulator tile into a vector register.

        When the register is narrower than the 64-byte tile, ``chunk``
        selects which register-sized slice of the tile to move.
        """
        return self.emit(
            Opcode.CAMP_STORE, (dst_vector,), (acc,), dtype=DType.INT32, imm=chunk
        )

    def mmla(self, acc, a, b, dtype=DType.INT8):
        """ARM MMLA-style 2x8 by 8x2 matrix multiply-accumulate."""
        return self.emit(Opcode.MMLA, (acc,), (acc, a, b), dtype=dtype)

    # -- scalar / control ------------------------------------------------

    def salu(self, dst, src=(), imm=None):
        return self.emit(Opcode.SALU, (dst,), tuple(src), imm=imm)

    def smul(self, dst, a, b):
        return self.emit(Opcode.SMUL, (dst,), (a, b))

    def sload(self, dst, addr, size=8):
        return self.emit(Opcode.SLOAD, (dst,), (), addr=addr, size=size)

    def sstore(self, src, addr, size=8):
        return self.emit(Opcode.SSTORE, (), (src,), addr=addr, size=size)

    def branch(self, cond_reg):
        return self.emit(Opcode.BRANCH, (), (cond_reg,))

    def loop_overhead(self, counter_reg):
        """Emit the canonical decrement + branch pair for one back-edge."""
        self.salu(counter_reg, [counter_reg])
        self.branch(counter_reg)

    # ---------------------------------------------------------------------

    def build(self):
        return self.program


__all__ = ["ProgramBuilder", "RegisterAllocator", "vreg", "xreg", "areg"]
