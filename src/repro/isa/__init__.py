"""Vector / SIMD instruction set abstraction.

Defines the data types, registers, instructions, program container and
an assembler-style builder used by the GEMM micro-kernels and by the
cycle-approximate pipeline simulator.
"""

from repro.isa.dtypes import DType
from repro.isa.instructions import FUClass, Instruction, Opcode
from repro.isa.registers import (
    Reg,
    RegisterFile,
    ScalarRegisterFile,
    VectorRegisterFile,
)
from repro.isa.program import Program
from repro.isa.builder import ProgramBuilder

__all__ = [
    "DType",
    "FUClass",
    "Instruction",
    "Opcode",
    "Reg",
    "RegisterFile",
    "ScalarRegisterFile",
    "VectorRegisterFile",
    "Program",
    "ProgramBuilder",
]
