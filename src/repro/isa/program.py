"""Program container: an ordered instruction trace with summary helpers."""

from collections import Counter

from repro.isa.instructions import Instruction


class Program:
    """An ordered sequence of instructions (a dynamic trace).

    The simulator consumes programs as *traces*: loops are already
    unrolled by the emitting micro-kernel, so there is no control-flow
    state to model beyond the back-edge ``BRANCH`` bookkeeping
    instructions the kernels choose to include.
    """

    def __init__(self, instructions=None, name=""):
        self.name = name
        self._instructions = list(instructions or [])
        #: (length, mix dict) set by the batch engine's trace compiler so
        #: repeated ``classify_vector_mix`` calls are O(1); the length
        #: guard invalidates it if the trace grows afterwards.
        self._vector_mix_cache = None

    def append(self, instruction):
        if not isinstance(instruction, Instruction):
            raise TypeError("expected Instruction, got %r" % (instruction,))
        self._instructions.append(instruction)
        self._vector_mix_cache = None

    def extend(self, instructions):
        for instruction in instructions:
            self.append(instruction)

    def __len__(self):
        return len(self._instructions)

    def __iter__(self):
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    def opcode_histogram(self):
        """Counter of opcodes in the trace."""
        return Counter(inst.opcode for inst in self)

    def fu_histogram(self):
        """Counter of functional-unit classes in the trace."""
        return Counter(inst.fu_class for inst in self)

    def count(self, *opcodes):
        """Number of instructions whose opcode is in ``opcodes``."""
        wanted = set(opcodes)
        return sum(1 for inst in self if inst.opcode in wanted)

    @property
    def vector_instruction_count(self):
        return sum(1 for inst in self if inst.is_vector)

    @property
    def scalar_instruction_count(self):
        return len(self) - self.vector_instruction_count

    def classify_vector_mix(self):
        """Split vector instructions into read / write / alu groups.

        Mirrors the R / W / Alu categories of the paper's Figure 17
        heatmap: vector loads, vector stores, and everything else
        (arithmetic, permutes, matrix ops).
        """
        cached = self._vector_mix_cache
        if cached is not None and cached[0] == len(self._instructions):
            return dict(cached[1])
        reads = writes = alu = 0
        for inst in self:
            if not inst.is_vector:
                continue
            if inst.is_load:
                reads += 1
            elif inst.is_store:
                writes += 1
            else:
                alu += 1
        return {"read": reads, "write": writes, "alu": alu}

    def bytes_loaded(self):
        return sum(inst.size for inst in self if inst.is_load)

    def bytes_stored(self):
        return sum(inst.size for inst in self if inst.is_store)

    def __str__(self):
        header = "Program %r (%d instructions)" % (self.name, len(self))
        body = "\n".join("  %4d: %s" % (i, inst) for i, inst in enumerate(self))
        return header + ("\n" + body if body else "")
