"""Stable public facade.

The one import surface external callers (scripts, notebooks, the
``examples/``) should use::

    from repro import api

    execution = api.analyze(512, 512, 512, method="camp8")
    result = api.gemm(a, b, method="camp4", machine="sargantana")
    response = api.sweep(api.SweepRequest(sizes=(128, 256)))

Everything here is covered by the request schema's compatibility
policy (see :mod:`repro.serving.requests`): names in ``__all__`` keep
their signatures across releases, new capabilities arrive as new
optional parameters or new names, and anything not exported here is
internal and may move without notice.

Two calling styles, one execution path:

- **Direct** — :func:`gemm` / :func:`analyze` / :func:`predict` take
  plain arguments and return execution objects, for interactive use.
- **Request-shaped** — :func:`sweep` / :func:`calibrate` /
  :func:`execute` take the typed request dataclasses and return the
  same JSON-ready response envelopes the ``repro-camp serve`` daemon
  emits, so a script's local results are byte-comparable with served
  ones (:func:`connect` returns a client for a running daemon;
  :func:`serve_app` embeds the daemon itself).
"""

from repro.analytic import predict, predict_parallel
from repro.gemm.api import analyze, gemm, make_driver, resolve_machine
from repro.machines import (
    MachineSpec,
    MachineSpecError,
    get_spec,
    load_machine_file,
    machine_names,
)
from repro.serving import (
    BACKENDS,
    SCHEMA_VERSION,
    STRATEGIES,
    CalibrateRequest,
    GemmRequest,
    Request,
    RequestError,
    SchemaVersionError,
    SweepRequest,
    describe_schema,
    parse_request,
)
from repro.serving.client import ServerClient, ServerError
from repro.serving.execute import (
    calibrate_response,
    execute,
    gemm_response,
    sweep_response,
)
from repro.serving.server import serve_app


def sweep(request, **kwargs):
    """Run a :class:`SweepRequest`; returns the response envelope.

    Keyword arguments (``cache``, ``jobs``, ``run_id``, ``resume``,
    ``on_point``, ...) are execution policy — they never change the
    records. See :func:`repro.serving.execute.sweep_response`.
    """
    return sweep_response(request, **kwargs)


def calibrate(request, **kwargs):
    """Run a :class:`CalibrateRequest`; returns the response envelope."""
    return calibrate_response(request, **kwargs)


def connect(base_url, **kwargs):
    """A :class:`ServerClient` for a running ``repro-camp serve``."""
    return ServerClient(base_url, **kwargs)


__all__ = [
    "BACKENDS",
    "CalibrateRequest",
    "GemmRequest",
    "MachineSpec",
    "MachineSpecError",
    "Request",
    "RequestError",
    "SCHEMA_VERSION",
    "STRATEGIES",
    "SchemaVersionError",
    "ServerClient",
    "ServerError",
    "SweepRequest",
    "analyze",
    "calibrate",
    "calibrate_response",
    "connect",
    "describe_schema",
    "execute",
    "gemm",
    "gemm_response",
    "get_spec",
    "load_machine_file",
    "machine_names",
    "make_driver",
    "parse_request",
    "predict",
    "predict_parallel",
    "resolve_machine",
    "serve_app",
    "sweep",
    "sweep_response",
]
